//! The per-tenant session cache gluing the Session API to the
//! [`smartpaf_heinfer::serve`] front end.
//!
//! Planning and keygen are the expensive per-tenant steps (a trace
//! search plus a full CKKS key chain); [`SessionCache`] pays them once
//! per tenant — the first request builds the [`CompiledSession`]
//! through a caller-supplied factory, every later request reuses it.
//! The cache implements [`BatchService`], so
//! [`serve_sessions`] is all it takes to stand up a serving front end
//! over compiled sessions.

use crate::session::{CompiledSession, SessionError};
use smartpaf_heinfer::serve::{BatchService, ServeConfig, Server, TenantId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Lazily built, permanently cached `CompiledSession` per tenant.
///
/// The factory maps a [`TenantId`] to a compiled session — typically
/// `Session::builder(...).seed(tenant).plan()?.compile()` — and runs at
/// most once per tenant for the cache's lifetime.
pub struct SessionCache<F> {
    build: F,
    sessions: HashMap<TenantId, CompiledSession>,
    hits: usize,
    misses: usize,
}

impl<F> SessionCache<F>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError>,
{
    /// Creates an empty cache around the session factory.
    pub fn new(build: F) -> Self {
        SessionCache {
            build,
            sessions: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The tenant's session, building (plan + compile + keygen) on
    /// first use.
    pub fn session(&mut self, tenant: TenantId) -> Result<&mut CompiledSession, SessionError> {
        match self.sessions.entry(tenant) {
            Entry::Occupied(e) => {
                self.hits += 1;
                Ok(e.into_mut())
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                Ok(v.insert((self.build)(tenant)?))
            }
        }
    }

    /// Pre-builds a tenant's session so its first request skips the
    /// compile hit.
    pub fn warm(&mut self, tenant: TenantId) -> Result<(), SessionError> {
        self.session(tenant).map(|_| ())
    }

    /// Cache lookups answered by an already-built session.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache lookups that built a session (at most one per tenant; a
    /// failed build counts and retries on the next lookup).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Tenants with a built session.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True before any session was built.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

impl<F> BatchService for SessionCache<F>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError> + Send,
{
    type Error = SessionError;

    fn run_batch(
        &mut self,
        tenant: TenantId,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, SessionError> {
        self.session(tenant)?
            .infer_batch(inputs)
            .map(|run| run.outputs)
    }
}

/// Stands up a serving front end over a session factory: the batcher
/// thread owns a fresh [`SessionCache`] around `build`.
pub fn serve_sessions<F>(build: F, config: ServeConfig) -> Server<SessionCache<F>>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError> + Send + 'static,
{
    Server::start(SessionCache::new(build), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use smartpaf_ckks::CkksParams;
    use smartpaf_nn::Linear;
    use smartpaf_tensor::Rng64;

    fn toy_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
        let mut rng = Rng64::new(tenant);
        Session::builder(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .relu(2.0)
            .params(CkksParams::toy())
            .seed(tenant)
            .plan()?
            .compile()
    }

    #[test]
    fn cache_builds_once_per_tenant() {
        let mut cache = SessionCache::new(toy_session);
        assert!(cache.is_empty());
        let x = [0.4, -0.2, 0.8, -0.6];
        let a = cache.run_batch(1, &[x.to_vec()]).unwrap();
        let b = cache.run_batch(1, &[x.to_vec()]).unwrap();
        let c = cache.run_batch(2, &[x.to_vec()]).unwrap();
        assert_eq!(cache.misses(), 2, "two tenants, one build each");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // Different tenants hold different keys and weights.
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn warm_prepays_the_compile() {
        let mut cache = SessionCache::new(toy_session);
        cache.warm(9).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 0));
        cache.run_batch(9, &[vec![0.1, 0.2, 0.3, 0.4]]).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn factory_errors_surface_as_session_errors() {
        let mut cache = SessionCache::new(|_t| {
            Session::builder(&[4])
                .relu(1.0)
                .params(CkksParams {
                    depth: 3, // nothing fits 3 levels
                    ..CkksParams::toy()
                })
                .plan()?
                .compile()
        });
        let err = cache.run_batch(0, &[vec![0.0; 4]]).unwrap_err();
        assert!(
            matches!(err, SessionError::NoFeasibleForm { .. }),
            "got {err:?}"
        );
        // The failed build is not cached; the next lookup retries.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
    }
}
