//! The per-tenant session cache gluing the Session API to the
//! [`smartpaf_heinfer::serve`] front end.
//!
//! Planning and keygen are the expensive per-tenant steps (a trace
//! search plus a full CKKS key chain); [`SessionCache`] pays them once
//! per tenant — the first request builds the [`CompiledSession`]
//! through a caller-supplied factory, every later request reuses it.
//! The cache implements [`BatchService`], so
//! [`serve_sessions`] is all it takes to stand up a serving front end
//! over compiled sessions.

use crate::registry::{PlanRegistry, RegistryError};
use crate::session::{CompiledSession, SessionBuilder, SessionError};
use smartpaf_heinfer::serve::{BatchService, ServeConfig, Server, TenantId};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Lazily built, cached `CompiledSession` per tenant.
///
/// The factory maps a [`TenantId`] to a compiled session — typically
/// `Session::builder(...).seed(tenant).plan()?.compile()` — and runs
/// once per tenant while the session stays healthy. A serving failure
/// that poisons the session
/// ([`SessionError::poisons_session`]) evicts the entry, so the next
/// request rebuilds instead of reusing a broken worker pool; all other
/// errors (bad inputs above all) keep the session cached.
pub struct SessionCache<F> {
    build: F,
    sessions: HashMap<TenantId, CompiledSession>,
    hits: usize,
    misses: usize,
    evictions: usize,
    packed: bool,
}

impl<F> SessionCache<F>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError>,
{
    /// Creates an empty cache around the session factory.
    pub fn new(build: F) -> Self {
        SessionCache {
            build,
            sessions: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            packed: false,
        }
    }

    /// Switches batches onto the slot-packing path:
    /// [`BatchService::run_batch`] multiplexes each lane-group of
    /// inputs into one ciphertext
    /// ([`CompiledSession::infer_batch_packed`]), and
    /// [`BatchService::lane_capacity`] reports each tenant's real
    /// capacity so a packing-aware batcher
    /// (`ServeConfig::pack_lanes`) fills slot lanes before growing
    /// worker batches.
    pub fn with_packing(mut self, packed: bool) -> Self {
        self.packed = packed;
        self
    }

    /// True when batches run slot-packed.
    pub fn packing(&self) -> bool {
        self.packed
    }

    /// The tenant's session, building (plan + compile + keygen) on
    /// first use.
    pub fn session(&mut self, tenant: TenantId) -> Result<&mut CompiledSession, SessionError> {
        match self.sessions.entry(tenant) {
            Entry::Occupied(e) => {
                self.hits += 1;
                Ok(e.into_mut())
            }
            Entry::Vacant(v) => {
                self.misses += 1;
                Ok(v.insert((self.build)(tenant)?))
            }
        }
    }

    /// Pre-builds a tenant's session so its first request skips the
    /// compile hit.
    pub fn warm(&mut self, tenant: TenantId) -> Result<(), SessionError> {
        self.session(tenant).map(|_| ())
    }

    /// Cache lookups answered by an already-built session.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache lookups that built a session (once per healthy tenant; a
    /// failed build counts and retries on the next lookup, and an
    /// evicted session rebuilds).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Sessions evicted because a serving failure poisoned them.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Applies the poisoning policy to a serving failure: when `err`
    /// [poisons the session](SessionError::poisons_session), the
    /// tenant's entry is dropped (returning `true`) so the next
    /// request rebuilds; otherwise the cached session stays. Callers
    /// running sessions outside [`BatchService::run_batch`] — which
    /// applies this automatically — should report failures here.
    pub fn evict_if_poisoned(&mut self, tenant: TenantId, err: &SessionError) -> bool {
        if err.poisons_session() && self.sessions.remove(&tenant).is_some() {
            self.evictions += 1;
            return true;
        }
        false
    }

    /// Tenants with a built session.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True before any session was built.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

impl<F> BatchService for SessionCache<F>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError> + Send,
{
    type Error = SessionError;

    fn run_batch(
        &mut self,
        tenant: TenantId,
        inputs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, SessionError> {
        let packed = self.packed;
        let result = self.session(tenant).and_then(|session| {
            let run = if packed {
                session.infer_batch_packed(inputs)?
            } else {
                session.infer_batch(inputs)?
            };
            Ok(run.outputs)
        });
        if let Err(e) = &result {
            self.evict_if_poisoned(tenant, e);
        }
        result
    }

    fn lane_capacity(&mut self, tenant: TenantId) -> usize {
        if !self.packed {
            return 1;
        }
        // The capacity is a property of the tenant's compiled session;
        // a failed build reports 1 (the error itself surfaces on the
        // actual batch).
        self.session(tenant)
            .map(|session| session.lane_capacity())
            .unwrap_or(1)
    }
}

/// Stands up a serving front end over a session factory: the batcher
/// thread owns a fresh [`SessionCache`] around `build`.
pub fn serve_sessions<F>(build: F, config: ServeConfig) -> Server<SessionCache<F>>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError> + Send + 'static,
{
    Server::start(SessionCache::new(build), config)
}

/// [`serve_sessions`] with slot packing on end to end: the batcher
/// fills each tenant's slot lanes before growing worker batches
/// (`config.pack_lanes` is forced on) and the cache multiplexes every
/// lane-group into one ciphertext
/// ([`CompiledSession::infer_batch_packed`]). The final
/// [`ServeStats`](smartpaf_heinfer::ServeStats) then carry the
/// slot-occupancy histogram next to the request batch-fill one.
pub fn serve_sessions_packed<F>(build: F, mut config: ServeConfig) -> Server<SessionCache<F>>
where
    F: FnMut(TenantId) -> Result<CompiledSession, SessionError> + Send + 'static,
{
    config.pack_lanes = true;
    Server::start(SessionCache::new(build).with_packing(true), config)
}

/// A session factory backed by a [`PlanRegistry`]: a tenant's first
/// request compiles straight from a shipped plan artifact when one
/// matches the tenant's model (no planner run at all, see
/// [`PlanRegistry::load_plan`]); otherwise it plans — warm-started
/// from the registry's nearest neighbour — and publishes the fresh
/// plan back, so the next process serving this tenant skips the
/// search. Wrap the result in [`SessionCache::new`] or hand it to
/// [`serve_sessions`].
///
/// `builder_for` must produce a fresh [`SessionBuilder`] for the same
/// tenant on every call (it is called again when no exact artifact
/// matches).
///
/// # Example
///
/// ```
/// use smartpaf::{serve::registry_factory, PlanRegistry, Session, SessionCache};
/// use smartpaf_ckks::CkksParams;
/// use smartpaf_nn::Linear;
/// use smartpaf_tensor::Rng64;
///
/// let dir = std::env::temp_dir().join("smartpaf-registry-factory-doc");
/// let registry = PlanRegistry::open(&dir).unwrap();
/// let mut cache = SessionCache::new(registry_factory(registry, |tenant| {
///     let mut rng = Rng64::new(tenant);
///     Session::builder(&[4])
///         .affine(Linear::new(4, 4, &mut rng))
///         .relu(2.0)
///         .params(CkksParams::toy())
///         .seed(tenant)
/// }));
/// cache.warm(1).unwrap(); // plans (or loads) + compiles + publishes
/// ```
pub fn registry_factory<B>(
    registry: PlanRegistry,
    mut builder_for: B,
) -> impl FnMut(TenantId) -> Result<CompiledSession, SessionError>
where
    B: FnMut(TenantId) -> SessionBuilder,
{
    move |tenant| match registry.load_plan(builder_for(tenant)) {
        Ok(plan) => plan.compile(),
        Err(RegistryError::Session(e)) => Err(e),
        Err(_) => {
            // No (usable) artifact: plan fresh — warm-started off the
            // registry's neighbours — and publish best-effort (a
            // read-only registry still serves).
            let plan = builder_for(tenant).registry(&registry).plan()?;
            let _ = registry.save_plan(&plan);
            plan.compile()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use smartpaf_ckks::CkksParams;
    use smartpaf_heinfer::RunError;
    use smartpaf_nn::Linear;
    use smartpaf_tensor::Rng64;

    fn toy_session(tenant: TenantId) -> Result<CompiledSession, SessionError> {
        let mut rng = Rng64::new(tenant);
        Session::builder(&[4])
            .affine(Linear::new(4, 4, &mut rng))
            .relu(2.0)
            .params(CkksParams::toy())
            .seed(tenant)
            .plan()?
            .compile()
    }

    #[test]
    fn cache_builds_once_per_tenant() {
        let mut cache = SessionCache::new(toy_session);
        assert!(cache.is_empty());
        let x = [0.4, -0.2, 0.8, -0.6];
        let a = cache.run_batch(1, &[x.to_vec()]).unwrap();
        let b = cache.run_batch(1, &[x.to_vec()]).unwrap();
        let c = cache.run_batch(2, &[x.to_vec()]).unwrap();
        assert_eq!(cache.misses(), 2, "two tenants, one build each");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // Different tenants hold different keys and weights.
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn warm_prepays_the_compile() {
        let mut cache = SessionCache::new(toy_session);
        cache.warm(9).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 0));
        cache.run_batch(9, &[vec![0.1, 0.2, 0.3, 0.4]]).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
    }

    #[test]
    fn factory_errors_surface_as_session_errors() {
        let mut cache = SessionCache::new(|_t| {
            Session::builder(&[4])
                .relu(1.0)
                .params(CkksParams {
                    depth: 3, // nothing fits 3 levels
                    ..CkksParams::toy()
                })
                .plan()?
                .compile()
        });
        let err = cache.run_batch(0, &[vec![0.0; 4]]).unwrap_err();
        assert!(
            matches!(err, SessionError::NoFeasibleForm { .. }),
            "got {err:?}"
        );
        // The failed build is not cached; the next lookup retries.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn input_errors_keep_the_session_cached() {
        // A bad request is the client's fault, not the session's: the
        // expensive plan + keygen must survive it (evicting here would
        // hand one misbehaving client a rebuild-per-request DoS lever).
        let mut cache = SessionCache::new(toy_session);
        cache.warm(3).unwrap();
        let err = cache.run_batch(3, &[vec![0.0; 9]]).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Run(RunError::InputTooLong { len: 9, max: 4 })
        ));
        assert_eq!(cache.len(), 1, "input errors must not evict");
        assert_eq!(cache.evictions(), 0);
        cache.run_batch(3, &[vec![0.1, 0.2, 0.3, 0.4]]).unwrap();
        assert_eq!((cache.misses(), cache.hits()), (1, 2), "no rebuild");
    }

    #[test]
    fn poisoned_sessions_are_evicted_and_rebuilt() {
        let mut cache = SessionCache::new(toy_session);
        cache.warm(5).unwrap();
        let x = [0.4, -0.2, 0.8, -0.6];
        let before = cache.run_batch(5, &[x.to_vec()]).unwrap();

        // A non-poisoning failure leaves the entry alone…
        let benign = SessionError::Run(RunError::InputTooLong { len: 9, max: 4 });
        assert!(!cache.evict_if_poisoned(5, &benign));
        assert_eq!((cache.len(), cache.evictions()), (1, 0));

        // …a poisoning one drops it, and the next request rebuilds a
        // session that serves identically (same tenant seed).
        let poison = SessionError::Run(RunError::WorkerPanicked);
        assert!(cache.evict_if_poisoned(5, &poison));
        assert_eq!((cache.len(), cache.evictions()), (0, 1));
        // Evicting an already-absent tenant is a no-op.
        assert!(!cache.evict_if_poisoned(5, &poison));
        assert_eq!(cache.evictions(), 1);

        let after = cache.run_batch(5, &[x.to_vec()]).unwrap();
        assert_eq!(cache.misses(), 2, "the poisoned entry was rebuilt");
        assert_eq!(before, after, "rebuild is deterministic per tenant");
    }

    #[test]
    fn packed_cache_serves_within_noise_of_the_unpacked_path() {
        let mut plain = SessionCache::new(toy_session);
        let mut packed = SessionCache::new(toy_session).with_packing(true);
        assert!(!plain.packing());
        assert!(packed.packing());
        // Packing off never builds a session just to report capacity.
        assert_eq!(plain.lane_capacity(1), 1);
        assert!(plain.is_empty());
        // Packing on reports the tenant's real capacity (toy ring: 128
        // slots over a dim-4 pipeline).
        assert_eq!(packed.lane_capacity(1), 32);
        assert_eq!(packed.len(), 1);

        let inputs: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 - 12.0) / 12.0).collect())
            .collect();
        let a = plain.run_batch(1, &inputs).unwrap();
        let b = packed.run_batch(1, &inputs).unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 6);
        for (ya, yb) in a.iter().zip(&b) {
            for (va, vb) in ya.iter().zip(yb) {
                assert!((va - vb).abs() < 0.1, "{va} vs {vb}");
            }
        }
    }

    #[test]
    fn registry_factory_ships_plans_across_caches() {
        use crate::registry::PlanRegistry;

        let dir =
            std::env::temp_dir().join(format!("smartpaf-serve-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = PlanRegistry::open(&dir).unwrap();
        let builder_for = |tenant: TenantId| {
            let mut rng = Rng64::new(tenant);
            crate::session::Session::builder(&[4])
                .affine(Linear::new(4, 4, &mut rng))
                .relu(2.0)
                .params(CkksParams::toy())
                .seed(tenant)
        };

        // First cache: no artifact yet → plans and publishes.
        let mut first = SessionCache::new(registry_factory(registry.clone(), builder_for));
        let x = [0.4, -0.2, 0.8, -0.6];
        let a = first.run_batch(1, &[x.to_vec()]).unwrap();
        assert_eq!(registry.list().unwrap().len(), 1, "plan published");

        // Second cache (a fresh process in spirit): compiles from the
        // artifact without planning, and serves bit-identically.
        let mut second = SessionCache::new(registry_factory(registry.clone(), builder_for));
        let b = second.run_batch(1, &[x.to_vec()]).unwrap();
        assert_eq!(a, b, "shipped plan serves bit-identically");
        let report = second.session(1).unwrap().plan_report().to_string();
        assert!(
            report.contains("0 dry run(s)"),
            "loaded plan ran no search: {report}"
        );
    }
}
