//! The content-addressed plan registry: ship a planning outcome as a
//! JSON artifact, load it elsewhere, serve bit-identically.
//!
//! Planning is the expensive deterministic half of a deployment (a
//! trace-priced search over form vectors); keys and weights are the
//! cheap-to-rederive, never-shipped half. A [`PlanRegistry`] persists
//! exactly the first: [`PlanRegistry::save_plan`] writes a versioned
//! JSON envelope whose filename is a *content address* — a stable
//! [`fnv1a_64`] hash over the probed model description, the CKKS
//! parameters, the objective, the [`PlanBudget`], and the candidate
//! form list. [`PlanRegistry::load_plan`] recomputes that address from
//! the caller's own [`SessionBuilder`], so an artifact can never be
//! applied to a model it was not planned for; the loaded plan is
//! validated by a single re-trace and compiles to a session that
//! serves bit-identically to a freshly planned one (same builder
//! seed ⇒ same keys ⇒ same ciphertext arithmetic).
//!
//! Two lookup granularities:
//!
//! - **Exact** ([`PlanRegistry::load_plan`]): content address matches,
//!   no planning at all — [`Plan::dry_runs_used`] is 0 and the single
//!   validation re-trace is the only trace spent.
//! - **Neighbour** ([`SessionBuilder::registry`]): no exact artifact
//!   needed; planning *warm-starts* from a stored neighbour's chosen
//!   form vector instead of the uniform pass, spending strictly fewer
//!   dry runs than a cold search whenever the neighbour's vector is
//!   feasible.
//!
//! On-disk format, field-by-field schema, and compatibility rules are
//! specified in `docs/ARTIFACT_FORMAT.md`.
//!
//! # Example
//!
//! ```
//! use smartpaf::{PlanRegistry, Session};
//! use smartpaf_ckks::CkksParams;
//! use smartpaf_nn::Linear;
//! use smartpaf_tensor::Rng64;
//!
//! let dir = std::env::temp_dir().join("smartpaf-registry-mod-doc");
//! let registry = PlanRegistry::open(&dir).unwrap();
//!
//! // One process plans and publishes…
//! let build = || {
//!     let mut rng = Rng64::new(3);
//!     Session::builder(&[4])
//!         .affine(Linear::new(4, 4, &mut rng))
//!         .relu(2.0)
//!         .params(CkksParams::toy())
//!         .seed(11)
//! };
//! let key = registry.save_plan(&build().plan().unwrap()).unwrap();
//!
//! // …another (here: the same) loads without planning and serves.
//! let plan = registry.load_plan(build()).unwrap();
//! assert_eq!(plan.dry_runs_used(), 0);
//! let mut session = plan.compile().unwrap();
//! let out = session.infer(&[0.5, -0.5, 0.25, -0.25]).unwrap();
//! assert_eq!(out.len(), 4);
//! assert_eq!(registry.list().unwrap()[0].content_key, key);
//! ```

use crate::session::{Plan, PlanBudget, PlannedCandidate, SessionBuilder, SessionError};
use serde::{json, Deserialize, Serialize, Value};
use smartpaf_ckks::CkksParams;
use smartpaf_heinfer::{fnv1a_64, PipelineDesc};
use smartpaf_polyfit::{CompositePaf, PafForm};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::session::Objective;

/// Version of the on-disk envelope this build reads and writes.
/// Bumped on any breaking schema change; readers reject other versions
/// with [`RegistryError::VersionMismatch`] instead of guessing.
pub const FORMAT_VERSION: u32 = 1;

/// The envelope's `format` marker, so arbitrary JSON is rejected
/// before any field is interpreted.
const FORMAT_MARKER: &str = "smartpaf-plan";

/// Typed failure of a registry operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The filesystem said no (permissions, missing directory, …).
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The file is not a well-formed plan artifact (broken JSON, a
    /// missing field, a wrong `format` marker).
    Parse {
        /// The offending file.
        path: PathBuf,
        /// What failed to parse.
        message: String,
    },
    /// The artifact's `format_version` is one this build does not
    /// read.
    VersionMismatch {
        /// The version stored in the artifact.
        found: u64,
        /// The version this build supports ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// No artifact exists for the model's content address.
    NotFound {
        /// The content key derived from the caller's builder.
        key: String,
    },
    /// The artifact parsed but contradicts itself or the model it is
    /// addressed to (stale hash, edited fields, trace mismatch).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The contradiction found.
        message: String,
    },
    /// Probing the caller's builder failed before the registry was
    /// ever consulted.
    Session(SessionError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => {
                write!(f, "registry I/O error at {}: {message}", path.display())
            }
            RegistryError::Parse { path, message } => {
                write!(f, "malformed plan artifact {}: {message}", path.display())
            }
            RegistryError::VersionMismatch { found, supported } => write!(
                f,
                "plan artifact format v{found} unsupported (this build reads v{supported})"
            ),
            RegistryError::NotFound { key } => {
                write!(f, "no plan artifact for content key {key}")
            }
            RegistryError::Corrupt { path, message } => {
                write!(f, "corrupt plan artifact {}: {message}", path.display())
            }
            RegistryError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for RegistryError {
    fn from(e: SessionError) -> Self {
        RegistryError::Session(e)
    }
}

/// One registry entry as [`PlanRegistry::list`] reports it — enough to
/// pick artifacts without re-parsing full envelopes by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// The content address (also the filename stem).
    pub content_key: String,
    /// The model-only address (model description + CKKS parameters,
    /// ignoring objective/budget/candidates) — what groups artifacts
    /// of the same deployment planned under different knobs.
    pub model_key: String,
    /// Where the artifact lives.
    pub path: PathBuf,
    /// The stored plan's chosen form vector, one form per PAF slot.
    pub chosen_forms: Vec<PafForm>,
    /// Dry runs the original search spent producing the plan.
    pub dry_runs: usize,
}

/// Retention policy for [`PlanRegistry::gc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcPolicy {
    /// Keep at most this many artifacts; the newest survive.
    MaxArtifacts(usize),
    /// Remove every artifact whose file is older than this age.
    MaxAge(std::time::Duration),
}

/// What one [`PlanRegistry::gc`] sweep did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcReport {
    /// Content keys of the removed artifacts, in removal order
    /// (oldest first).
    pub removed: Vec<String>,
    /// Artifacts still in the registry after the sweep.
    pub retained: usize,
}

/// A content-addressed, directory-backed store of planning outcomes.
/// See the [module docs](self) for the deployment story and
/// `docs/ARTIFACT_FORMAT.md` for the wire format.
#[derive(Debug, Clone)]
pub struct PlanRegistry {
    root: PathBuf,
}

impl PlanRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<PlanRegistry, RegistryError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| RegistryError::Io {
            path: root.clone(),
            message: e.to_string(),
        })?;
        Ok(PlanRegistry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn artifact_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.json"))
    }

    /// Persists a plan under its content address and returns the key.
    /// Saving the same plan (or any plan of the same planning inputs)
    /// twice overwrites the same file — the registry is a cache, and
    /// identical inputs produce identical plans.
    pub fn save_plan(&self, plan: &Plan) -> Result<String, RegistryError> {
        let desc = plan.pipeline().describe();
        let key = content_key(
            &desc,
            plan.params(),
            &plan.objective(),
            &plan.budget(),
            plan.candidate_forms(),
        );
        let envelope = Value::object([
            ("format", FORMAT_MARKER.serialize()),
            ("format_version", u64::from(FORMAT_VERSION).serialize()),
            ("content_key", key.serialize()),
            ("model_key", model_key(&desc, plan.params()).serialize()),
            ("pipeline", desc.serialize()),
            ("plan", plan.serialize()),
        ]);
        let path = self.artifact_path(&key);
        let tmp = self.root.join(format!("{key}.json.tmp"));
        let io_err = |p: &Path, e: io::Error| RegistryError::Io {
            path: p.to_path_buf(),
            message: e.to_string(),
        };
        let mut text = json::to_string_pretty(&envelope);
        text.push('\n');
        fs::write(&tmp, text).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        Ok(key)
    }

    /// Loads the artifact matching the builder's content address,
    /// validates it, and returns a ready-to-compile [`Plan`] without
    /// running the planner ([`Plan::dry_runs_used`] is 0).
    ///
    /// The builder is probed exactly as [`SessionBuilder::plan`] would
    /// (that probe is what the content address covers), the stored
    /// composites are installed, and one validation re-trace checks
    /// the artifact's recorded schedule against the model. Compiling
    /// the result serves bit-identically to a freshly planned session
    /// with the same builder seed.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no artifact matches;
    /// [`RegistryError::Parse`] / [`RegistryError::VersionMismatch`] /
    /// [`RegistryError::Corrupt`] when one does but cannot be trusted;
    /// [`RegistryError::Session`] when the builder itself cannot be
    /// probed.
    pub fn load_plan(&self, builder: SessionBuilder) -> Result<Plan, RegistryError> {
        let probed = builder.probe()?;
        let desc = probed.base.describe();
        let key = content_key(
            &desc,
            &probed.params,
            &probed.objective,
            &probed.budget,
            &probed.forms,
        );
        let path = self.artifact_path(&key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound { key })
            }
            Err(e) => {
                return Err(RegistryError::Io {
                    path,
                    message: e.to_string(),
                })
            }
        };
        let envelope = parse_envelope(&path, &text)?;
        let stored_key: String = field(&path, &envelope, "content_key")?;
        if stored_key != key {
            return Err(corrupt(
                &path,
                format!("stored content key {stored_key} does not match the model's {key}"),
            ));
        }
        let body = envelope
            .req("plan")
            .map_err(|e| parse(&path, e.to_string()))?;
        let params: CkksParams = field(&path, body, "params")?;
        let objective: Objective = field(&path, body, "objective")?;
        let budget: PlanBudget = field(&path, body, "budget")?;
        let candidate_forms: Vec<PafForm> = field(&path, body, "candidate_forms")?;
        let candidates: Vec<PlannedCandidate> = field(&path, body, "candidates")?;
        let chosen: usize = field(&path, body, "chosen")?;
        let composites: Vec<CompositePaf> = field(&path, body, "chosen_composites")?;
        let skipped: Vec<PafForm> = field(&path, body, "skipped")?;

        // The content key covers all four planning inputs, so any
        // disagreement means the envelope was edited after hashing.
        if params != probed.params
            || objective != probed.objective
            || budget != probed.budget
            || candidate_forms != probed.forms
        {
            return Err(corrupt(
                &path,
                "planning inputs disagree with the content address".to_string(),
            ));
        }
        if chosen >= candidates.len() {
            return Err(corrupt(
                &path,
                format!(
                    "chosen index {chosen} out of range ({} candidates)",
                    candidates.len()
                ),
            ));
        }
        let chosen_cand = &candidates[chosen];
        if composites.len() != chosen_cand.forms.len() {
            return Err(corrupt(
                &path,
                format!(
                    "{} stored composites for {} chosen slots",
                    composites.len(),
                    chosen_cand.forms.len()
                ),
            ));
        }
        for (i, (c, f)) in composites.iter().zip(&chosen_cand.forms).enumerate() {
            if c.form() != Some(*f) {
                return Err(corrupt(
                    &path,
                    format!("slot {i} composite is not tagged with the chosen form {f}"),
                ));
            }
        }

        // Rebuild and validate: the stored schedule must replay on the
        // freshly probed model, trace for trace.
        let pipeline = probed.base.try_with_pafs(&composites).map_err(|e| {
            corrupt(
                &path,
                format!("stored composites do not fit the model: {e}"),
            )
        })?;
        let (trace, _) = pipeline
            .dry_run(probed.params.depth, true)
            .map_err(|e| corrupt(&path, format!("stored plan no longer traces: {e}")))?;
        if trace != chosen_cand.trace {
            return Err(corrupt(
                &path,
                "stored trace does not match a re-trace of the model".to_string(),
            ));
        }
        Ok(Plan::assemble(
            pipeline,
            chosen,
            candidates,
            candidate_forms,
            skipped,
            params,
            probed.objective,
            budget,
            0,
            probed.seed,
        ))
    }

    /// Every readable artifact in the registry, sorted by content key.
    /// Files that are not well-formed plan artifacts are skipped (the
    /// registry is a cache; listing stays usable next to a corrupt
    /// entry — loading one reports the corruption instead).
    pub fn list(&self) -> Result<Vec<ArtifactInfo>, RegistryError> {
        let entries = fs::read_dir(&self.root).map_err(|e| RegistryError::Io {
            path: self.root.clone(),
            message: e.to_string(),
        })?;
        let mut infos = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| RegistryError::Io {
                path: self.root.clone(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let Ok(envelope) = parse_envelope(&path, &text) else {
                continue;
            };
            let Some(info) = artifact_info(&path, &envelope) else {
                continue;
            };
            infos.push(info);
        }
        infos.sort_by(|a, b| a.content_key.cmp(&b.content_key));
        Ok(infos)
    }

    /// Evicts artifacts under a retention [`GcPolicy`], oldest first.
    ///
    /// Age is the artifact file's modification time; ties break on
    /// content key, so a sweep is deterministic even when a whole
    /// batch was published in the same instant. Only well-formed plan
    /// artifacts (what [`PlanRegistry::list`] reports) are candidates —
    /// foreign or corrupt files in the directory are never touched, for
    /// the same reason `list` skips them.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be read, an
    /// artifact's metadata cannot be fetched, or a removal fails; a
    /// failed sweep may have removed a prefix of its victims (each
    /// removal is an independent `unlink`).
    pub fn gc(&self, policy: GcPolicy) -> Result<GcReport, RegistryError> {
        let mut aged: Vec<(std::time::SystemTime, ArtifactInfo)> = Vec::new();
        for info in self.list()? {
            let mtime = fs::metadata(&info.path)
                .and_then(|m| m.modified())
                .map_err(|e| RegistryError::Io {
                    path: info.path.clone(),
                    message: e.to_string(),
                })?;
            aged.push((mtime, info));
        }
        aged.sort_by(|a, b| (a.0, &a.1.content_key).cmp(&(b.0, &b.1.content_key)));
        let victims: Vec<&ArtifactInfo> = match policy {
            GcPolicy::MaxArtifacts(keep) => aged
                .iter()
                .map(|(_, info)| info)
                .take(aged.len().saturating_sub(keep))
                .collect(),
            GcPolicy::MaxAge(age) => {
                let now = std::time::SystemTime::now();
                aged.iter()
                    .filter(|(mtime, _)| now.duration_since(*mtime).is_ok_and(|d| d > age))
                    .map(|(_, info)| info)
                    .collect()
            }
        };
        let mut removed = Vec::with_capacity(victims.len());
        for info in victims {
            fs::remove_file(&info.path).map_err(|e| RegistryError::Io {
                path: info.path.clone(),
                message: e.to_string(),
            })?;
            removed.push(info.content_key.clone());
        }
        Ok(GcReport {
            retained: aged.len() - removed.len(),
            removed,
        })
    }

    /// A warm-start seed for planning `desc` under `params`: the
    /// chosen form vector of a stored neighbour whose every slot form
    /// is feasible here. Same-model artifacts (matching model key) are
    /// preferred over merely structure-compatible ones; ties break on
    /// content key, so the pick is deterministic. `None` when nothing
    /// fits (including any registry I/O trouble — warm starts are
    /// best-effort and must never fail a plan).
    pub(crate) fn find_seed(
        &self,
        desc: &PipelineDesc,
        params: &CkksParams,
        per_slot: &[Vec<PafForm>],
    ) -> Option<Vec<PafForm>> {
        let mk = model_key(desc, params);
        let mut fits: Vec<(bool, ArtifactInfo)> = self
            .list()
            .ok()?
            .into_iter()
            .filter(|info| {
                info.chosen_forms.len() == per_slot.len()
                    && info
                        .chosen_forms
                        .iter()
                        .zip(per_slot)
                        .all(|(f, slot_forms)| slot_forms.contains(f))
            })
            .map(|info| (info.model_key != mk, info))
            .collect();
        fits.sort_by(|a, b| (a.0, &a.1.content_key).cmp(&(b.0, &b.1.content_key)));
        fits.into_iter().next().map(|(_, info)| info.chosen_forms)
    }
}

/// The content address: a stable hash over everything planning depends
/// on — the form-independent model description, the CKKS parameters,
/// the objective, the budget, and the candidate form list. The serving
/// seed is deliberately excluded (it affects keys, never the plan).
fn content_key(
    desc: &PipelineDesc,
    params: &CkksParams,
    objective: &Objective,
    budget: &PlanBudget,
    candidate_forms: &[PafForm],
) -> String {
    let v = Value::object([
        ("pipeline", desc.serialize()),
        ("params", params.serialize()),
        ("objective", objective.serialize()),
        ("budget", budget.serialize()),
        (
            "candidate_forms",
            Value::Array(candidate_forms.iter().map(Serialize::serialize).collect()),
        ),
    ]);
    format!("{:016x}", fnv1a_64(json::to_string(&v).as_bytes()))
}

/// The model-only address (description + parameters), grouping
/// artifacts of one deployment across objectives, budgets, and
/// candidate sets — the warm-start neighbourhood.
fn model_key(desc: &PipelineDesc, params: &CkksParams) -> String {
    let v = Value::object([
        ("pipeline", desc.serialize()),
        ("params", params.serialize()),
    ]);
    format!("{:016x}", fnv1a_64(json::to_string(&v).as_bytes()))
}

fn parse(path: &Path, message: String) -> RegistryError {
    RegistryError::Parse {
        path: path.to_path_buf(),
        message,
    }
}

fn corrupt(path: &Path, message: String) -> RegistryError {
    RegistryError::Corrupt {
        path: path.to_path_buf(),
        message,
    }
}

/// Parses and vets the envelope: well-formed JSON, the
/// [`FORMAT_MARKER`], and a supported [`FORMAT_VERSION`].
fn parse_envelope(path: &Path, text: &str) -> Result<Value, RegistryError> {
    let v = json::from_str(text).map_err(|e| parse(path, e.to_string()))?;
    let marker: String = field(path, &v, "format")?;
    if marker != FORMAT_MARKER {
        return Err(parse(
            path,
            format!("not a smartpaf plan artifact (format `{marker}`)"),
        ));
    }
    let version: u64 = field(path, &v, "format_version")?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(RegistryError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(v)
}

/// One typed field off an envelope object, with parse errors carrying
/// the artifact path.
fn field<T: Deserialize>(path: &Path, value: &Value, name: &str) -> Result<T, RegistryError> {
    value
        .req(name)
        .and_then(T::deserialize)
        .map_err(|e| parse(path, e.to_string()))
}

/// The listing row of a vetted envelope; `None` when the body is not
/// shaped like a plan (such files are skipped by [`PlanRegistry::list`]).
fn artifact_info(path: &Path, envelope: &Value) -> Option<ArtifactInfo> {
    let content_key = String::deserialize(envelope.req("content_key").ok()?).ok()?;
    let model_key = String::deserialize(envelope.req("model_key").ok()?).ok()?;
    let body = envelope.req("plan").ok()?;
    let chosen = usize::deserialize(body.req("chosen").ok()?).ok()?;
    let candidates = body.req("candidates").ok()?.as_array()?;
    let chosen_forms =
        Vec::<PafForm>::deserialize(candidates.get(chosen)?.req("forms").ok()?).ok()?;
    let dry_runs = usize::deserialize(body.req("dry_runs").ok()?).ok()?;
    Some(ArtifactInfo {
        content_key,
        model_key,
        path: path.to_path_buf(),
        chosen_forms,
        dry_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use smartpaf_nn::Linear;
    use smartpaf_tensor::Rng64;

    /// A fresh per-test registry directory under the system temp dir.
    fn test_registry(name: &str) -> PlanRegistry {
        let dir =
            std::env::temp_dir().join(format!("smartpaf-registry-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PlanRegistry::open(dir).expect("temp registry opens")
    }

    /// `blocks` affine→ReLU blocks over a flat 4-vector on the toy ring.
    fn builder(blocks: usize, layer_seed: u64) -> SessionBuilder {
        let mut rng = Rng64::new(layer_seed);
        let mut b = Session::builder(&[4]).params(CkksParams::toy());
        for _ in 0..blocks {
            b = b.affine(Linear::new(4, 4, &mut rng)).relu(2.0);
        }
        b
    }

    #[test]
    fn save_load_round_trips_the_plan() {
        let reg = test_registry("round-trip");
        let plan = builder(2, 5).plan().expect("plannable");
        let key = reg.save_plan(&plan).expect("saves");
        let loaded = reg.load_plan(builder(2, 5)).expect("loads");
        assert_eq!(loaded.chosen_forms(), plan.chosen_forms());
        assert_eq!(loaded.chosen(), plan.chosen());
        assert_eq!(loaded.candidates(), plan.candidates());
        assert_eq!(loaded.frontier_indices(), plan.frontier_indices());
        assert_eq!(loaded.skipped_forms(), plan.skipped_forms());
        assert_eq!(loaded.candidate_forms(), plan.candidate_forms());
        assert_eq!(loaded.dry_runs_used(), 0, "loading spends no search");
        assert!(plan.dry_runs_used() > 0);
        // The artifact is listed under its content key.
        let infos = reg.list().expect("lists");
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].content_key, key);
        assert_eq!(infos[0].chosen_forms, plan.chosen_forms());
        assert_eq!(infos[0].dry_runs, plan.dry_runs_used());
    }

    #[test]
    fn content_address_separates_planning_inputs() {
        let reg = test_registry("addressing");
        let a = builder(1, 5).plan().expect("plannable");
        let key_a = reg.save_plan(&a).expect("saves");
        // Different weights → different model → different key.
        let b = builder(1, 6).plan().expect("plannable");
        let key_b = reg.save_plan(&b).expect("saves");
        assert_ne!(key_a, key_b);
        // Different budget → different key, same model.
        let c = builder(1, 5)
            .budget(PlanBudget::uniform())
            .plan()
            .expect("plannable");
        let key_c = reg.save_plan(&c).expect("saves");
        assert_ne!(key_a, key_c);
        // The serving seed is *not* part of the address.
        let d = builder(1, 5).seed(999).plan().expect("plannable");
        let key_d = reg.save_plan(&d).expect("saves");
        assert_eq!(key_a, key_d);
        assert_eq!(reg.list().expect("lists").len(), 3);
    }

    #[test]
    fn loading_a_missing_artifact_is_not_found() {
        let reg = test_registry("missing");
        let err = reg.load_plan(builder(1, 5)).expect_err("nothing saved");
        assert!(matches!(err, RegistryError::NotFound { .. }), "{err:?}");
    }

    #[test]
    fn malformed_and_foreign_envelopes_are_parse_errors() {
        let reg = test_registry("malformed");
        let plan = builder(1, 5).plan().expect("plannable");
        let key = reg.save_plan(&plan).expect("saves");
        let path = reg.artifact_path(&key);

        fs::write(&path, "{ not json").unwrap();
        let err = reg.load_plan(builder(1, 5)).expect_err("broken JSON");
        assert!(matches!(err, RegistryError::Parse { .. }), "{err:?}");

        fs::write(&path, r#"{"format":"something-else","format_version":1}"#).unwrap();
        let err = reg.load_plan(builder(1, 5)).expect_err("wrong marker");
        assert!(matches!(err, RegistryError::Parse { .. }), "{err:?}");
        assert!(err.to_string().contains("something-else"));

        // Broken artifacts are skipped by list(), not fatal to it.
        assert_eq!(reg.list().expect("lists").len(), 0);
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let reg = test_registry("version");
        let plan = builder(1, 5).plan().expect("plannable");
        let key = reg.save_plan(&plan).expect("saves");
        let path = reg.artifact_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(
            &path,
            text.replace("\"format_version\": 1", "\"format_version\": 999"),
        )
        .unwrap();
        let err = reg.load_plan(builder(1, 5)).expect_err("future version");
        assert_eq!(
            err,
            RegistryError::VersionMismatch {
                found: 999,
                supported: FORMAT_VERSION
            }
        );
        assert!(err.to_string().contains("v999"));
    }

    #[test]
    fn edited_envelopes_are_corrupt() {
        let reg = test_registry("tampered");
        let plan = builder(2, 5).plan().expect("plannable");
        let key = reg.save_plan(&plan).expect("saves");
        let path = reg.artifact_path(&key);
        // Rewriting the budget after hashing contradicts the address.
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"max_dry_runs\": 96"));
        fs::write(
            &path,
            text.replace("\"max_dry_runs\": 96", "\"max_dry_runs\": 7"),
        )
        .unwrap();
        let err = reg.load_plan(builder(2, 5)).expect_err("edited body");
        assert!(matches!(err, RegistryError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("content address"));
    }

    #[test]
    fn warm_start_spends_strictly_fewer_dry_runs() {
        let forms = [PafForm::F1G2, PafForm::MinimaxDeg27];
        let budget = PlanBudget::greedy(64);
        let cold = builder(3, 5)
            .candidates(&forms)
            .budget(budget)
            .plan()
            .expect("plannable");

        let reg = test_registry("warm");
        reg.save_plan(&cold).expect("saves");
        let warm = builder(3, 5)
            .candidates(&forms)
            .budget(budget)
            .registry(&reg)
            .plan()
            .expect("plannable");

        // Seeded at the cold search's converged winner, the warm
        // search re-converges to the same vector — one seed dry run
        // replaced the whole uniform pass.
        assert_eq!(warm.chosen_forms(), cold.chosen_forms());
        assert_eq!(warm.chosen_cost(), cold.chosen_cost());
        assert!(
            warm.dry_runs_used() < cold.dry_runs_used(),
            "warm {} vs cold {}",
            warm.dry_runs_used(),
            cold.dry_runs_used()
        );

        // An empty registry changes nothing: the cold path is taken.
        let empty = test_registry("warm-empty");
        let still_cold = builder(3, 5)
            .candidates(&forms)
            .budget(budget)
            .registry(&empty)
            .plan()
            .expect("plannable");
        assert_eq!(still_cold.dry_runs_used(), cold.dry_runs_used());
        assert_eq!(still_cold.chosen(), cold.chosen());
    }

    /// Pins an artifact file's mtime to an exact instant.
    fn set_mtime(path: &Path, t: std::time::SystemTime) {
        fs::File::options()
            .append(true)
            .open(path)
            .unwrap()
            .set_modified(t)
            .unwrap();
    }

    /// Backdates an artifact's mtime by `secs` seconds.
    fn backdate(path: &Path, secs: u64) {
        let t = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
        set_mtime(path, t);
    }

    #[test]
    fn gc_max_artifacts_evicts_the_oldest_first() {
        let reg = test_registry("gc-count");
        let mut keys = Vec::new();
        for (i, seed) in [11u64, 12, 13].iter().enumerate() {
            let key = reg
                .save_plan(&builder(1, *seed).plan().expect("plannable"))
                .expect("saves");
            // Distinct, ordered ages: seed 11 oldest, seed 13 newest.
            backdate(&reg.artifact_path(&key), 3600 * (3 - i as u64));
            keys.push(key);
        }
        let report = reg.gc(GcPolicy::MaxArtifacts(1)).expect("sweeps");
        assert_eq!(report.removed, keys[..2], "oldest first, in order");
        assert_eq!(report.retained, 1);
        let left = reg.list().expect("lists");
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].content_key, keys[2], "the newest survives");

        // Under the cap, a sweep is a no-op.
        let report = reg.gc(GcPolicy::MaxArtifacts(5)).expect("sweeps");
        assert_eq!(
            report,
            GcReport {
                removed: vec![],
                retained: 1
            }
        );
    }

    #[test]
    fn gc_max_age_removes_only_stale_artifacts() {
        let reg = test_registry("gc-age");
        let stale = reg
            .save_plan(&builder(1, 11).plan().expect("plannable"))
            .expect("saves");
        backdate(&reg.artifact_path(&stale), 7200);
        let fresh = reg
            .save_plan(&builder(1, 12).plan().expect("plannable"))
            .expect("saves");

        let report = reg
            .gc(GcPolicy::MaxAge(std::time::Duration::from_secs(3600)))
            .expect("sweeps");
        assert_eq!(report.removed, vec![stale]);
        assert_eq!(report.retained, 1);
        assert_eq!(reg.list().expect("lists")[0].content_key, fresh);

        // Idempotent: nothing left past the age bound.
        let report = reg
            .gc(GcPolicy::MaxAge(std::time::Duration::from_secs(3600)))
            .expect("sweeps");
        assert!(report.removed.is_empty());
    }

    #[test]
    fn gc_ties_break_on_content_key_and_spare_foreign_files() {
        let reg = test_registry("gc-ties");
        // One shared mtime: ordering must fall back to the key.
        let t = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        let mut keys = Vec::new();
        for seed in [11u64, 12, 13] {
            let key = reg
                .save_plan(&builder(1, seed).plan().expect("plannable"))
                .expect("saves");
            set_mtime(&reg.artifact_path(&key), t);
            keys.push(key);
        }
        // A foreign file is not a gc candidate, whatever its age.
        let foreign = reg.root().join("notes.json");
        fs::write(&foreign, "{}").unwrap();
        backdate(&foreign, 720_000);

        let report = reg.gc(GcPolicy::MaxArtifacts(1)).expect("sweeps");
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(report.removed, sorted[..2], "equal mtimes order by key");
        assert_eq!(report.retained, 1);
        assert!(foreign.exists(), "gc never touches non-artifact files");

        // MaxArtifacts(0) empties the registry deterministically.
        let report = reg.gc(GcPolicy::MaxArtifacts(0)).expect("sweeps");
        assert_eq!(report.removed, vec![sorted[2].clone()]);
        assert_eq!(report.retained, 0);
        assert!(reg.list().expect("lists").is_empty());
    }

    #[test]
    fn find_seed_prefers_the_same_model() {
        let reg = test_registry("seed-tiers");
        let other = builder(2, 8).plan().expect("plannable");
        reg.save_plan(&other).expect("saves");
        let same = builder(2, 5).plan().expect("plannable");
        reg.save_plan(&same).expect("saves");

        let probed = builder(2, 5).probe().expect("probes");
        let desc = probed.base.describe();
        let per_slot = vec![PafForm::all().to_vec(); 2];
        let seed = reg
            .find_seed(&desc, &probed.params, &per_slot)
            .expect("a neighbour exists");
        assert_eq!(seed, same.chosen_forms(), "same-model artifact wins");

        // A slot-count mismatch disqualifies every artifact.
        assert!(reg
            .find_seed(&desc, &probed.params, &[PafForm::all().to_vec()])
            .is_none());
        // Forms outside the per-slot candidate lists disqualify too.
        let narrow = vec![vec![]; 2];
        assert!(reg.find_seed(&desc, &probed.params, &narrow).is_none());
    }
}
