//! The experiment workbench: pretrain once, run many ablation cells.

use crate::config::{TechniqueSet, TrainConfig};
use crate::replace::{coefficient_tune_all, num_slots, replace_all_with};
use crate::scheduler::{rank_forms_by_dry_run, FormCost, Scheduler, TrainEvent};
use crate::trainer::{evaluate, pretrain};
use smartpaf_datasets::SynthDataset;
use smartpaf_nn::{Model, SlotRef};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Tensor;

/// Result of one ablation cell (one row-column of Tab. 3).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Technique label, e.g. `"baseline+CT+PA+AT+SS"`.
    pub label: String,
    /// The PAF form used.
    pub form: PafForm,
    /// Validation accuracy of the unmodified pretrained model.
    pub original_acc: f32,
    /// Accuracy right after replacement, before any fine-tuning.
    pub post_replacement_acc: f32,
    /// Final accuracy after the scheduled training (and SS conversion
    /// when enabled).
    pub final_acc: f32,
    /// Full training timeline (Fig. 9).
    pub events: Vec<TrainEvent>,
}

/// A reusable experiment bench: owns a pretrained model and restores
/// it between ablation cells so every cell starts from the identical
/// checkpoint (as the paper does with its pretrained networks).
pub struct Workbench {
    model: Model,
    dataset: SynthDataset,
    config: TrainConfig,
    pretrained: Vec<Tensor>,
    original_acc: f32,
}

impl Workbench {
    /// Pretrains `model` on `dataset` for `pretrain_epochs` and
    /// snapshots the checkpoint.
    pub fn new(
        mut model: Model,
        dataset: SynthDataset,
        config: TrainConfig,
        pretrain_epochs: usize,
    ) -> Self {
        let original_acc = pretrain(&mut model, &dataset, &config, pretrain_epochs);
        let pretrained = model.params_mut().iter().map(|p| p.value.clone()).collect();
        Workbench {
            model,
            dataset,
            config,
            pretrained,
            original_acc,
        }
    }

    /// Validation accuracy of the pretrained (exact) model.
    pub fn original_acc(&self) -> f32 {
        self.original_acc
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &SynthDataset {
        &self.dataset
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Restores the pretrained checkpoint and reverts every slot to
    /// its exact operator.
    pub fn reset(&mut self) {
        self.model.visit_slots(&mut |s| match s {
            SlotRef::Relu(r) => r.restore_exact(),
            SlotRef::MaxPool(p) => p.restore_exact(),
        });
        let mut params = self.model.params_mut();
        assert_eq!(params.len(), self.pretrained.len(), "parameter drift");
        for (p, s) in params.iter_mut().zip(&self.pretrained) {
            p.value = s.clone();
            p.zero_grad();
        }
    }

    /// Runs one ablation cell: replacement of `form` with the given
    /// technique set. `relu_only` selects the Tab. 3 "Replace ReLU"
    /// block; otherwise all non-polynomial operators are replaced.
    pub fn run_cell(
        &mut self,
        techniques: TechniqueSet,
        form: PafForm,
        relu_only: bool,
    ) -> ExperimentResult {
        self.reset();
        let base = CompositePaf::from_form(form);
        // CT happens offline, before any replacement (Fig. 6).
        let pafs: Vec<CompositePaf> = if techniques.ct {
            coefficient_tune_all(&mut self.model, &self.dataset, &self.config, &base)
        } else {
            vec![base.clone(); num_slots(&mut self.model).max(1)]
        };

        // Post-replacement accuracy without fine-tuning (Fig. 7).
        replace_all_with(&mut self.model, &pafs, relu_only);
        let post_replacement_acc = evaluate(&mut self.model, &self.dataset, &self.config);

        // Reset replacement state; the scheduler owns the real run.
        self.model.visit_slots(&mut |s| match s {
            SlotRef::Relu(r) => r.restore_exact(),
            SlotRef::MaxPool(p) => p.restore_exact(),
        });

        let mut sched = Scheduler::new(self.config, techniques);
        let final_acc = sched.run(&mut self.model, &self.dataset, &pafs, relu_only);
        ExperimentResult {
            label: techniques.label(),
            form,
            original_acc: self.original_acc,
            post_replacement_acc,
            final_acc: if techniques.fine_tune {
                final_acc
            } else {
                post_replacement_acc.max(final_acc)
            },
            events: sched.events().to_vec(),
        }
    }

    /// Collects the trained per-layer ReLU PAFs of the current model
    /// state (App. B tables).
    pub fn current_relu_pafs(&mut self) -> Vec<CompositePaf> {
        crate::replace::collect_relu_pafs(&mut self.model)
    }

    /// Runs a cell, then perturbs every frozen static scale by
    /// `factor` and re-evaluates — the §4.5 scale-sensitivity sweep.
    /// Returns the perturbed-scale validation accuracy.
    pub fn run_cell_with_scale_factor(
        &mut self,
        techniques: TechniqueSet,
        form: PafForm,
        relu_only: bool,
        factor: f32,
    ) -> f32 {
        let _ = self.run_cell(techniques, form, relu_only);
        crate::replace::scale_static_scales(&mut self.model, factor);
        evaluate(&mut self.model, &self.dataset, &self.config)
    }

    /// Cost-aware cell selection: consults the dry-run trace oracle to
    /// pick the cheapest PAF form (fewest forced bootstraps, then
    /// fewest exact ciphertext multiplications) on a modulus chain of
    /// `max_level` levels, then runs that cell. Returns the oracle's
    /// cost row alongside the training result, so experiment tables
    /// can report accuracy *and* deployment cost from one call.
    ///
    /// # Errors
    ///
    /// Propagates [`smartpaf_heinfer::RunError`] when a candidate's
    /// atomic depth exceeds the chain (no parameter set can run it).
    pub fn run_cheapest_cell(
        &mut self,
        techniques: TechniqueSet,
        candidates: &[PafForm],
        max_level: usize,
        relu_only: bool,
    ) -> Result<(FormCost, ExperimentResult), smartpaf_heinfer::RunError> {
        assert!(!candidates.is_empty(), "no candidate forms");
        let ranked = rank_forms_by_dry_run(candidates, max_level)?;
        let cheapest = ranked[0];
        let result = self.run_cell(techniques, cheapest.form, relu_only);
        Ok((cheapest, result))
    }

    /// [`Workbench::run_cheapest_cell`] over the default candidate set:
    /// every built-in form whose ReLU fits the chain
    /// ([`CompositePaf::candidate_forms`]) — the training-side twin of
    /// planning a [`crate::Session`] without an explicit candidate
    /// list.
    ///
    /// # Errors
    ///
    /// [`smartpaf_heinfer::RunError::AtomicDepthExceeded`] when no
    /// built-in form fits a chain of `max_level` levels.
    pub fn run_cheapest_cell_auto(
        &mut self,
        techniques: TechniqueSet,
        max_level: usize,
        relu_only: bool,
    ) -> Result<(FormCost, ExperimentResult), smartpaf_heinfer::RunError> {
        let candidates = CompositePaf::candidate_forms(max_level);
        if candidates.is_empty() {
            // Surface the same typed error a direct dry run of the
            // cheapest form would produce.
            let paf = CompositePaf::from_form(PafForm::F1G2);
            return Err(smartpaf_heinfer::RunError::AtomicDepthExceeded {
                label: format!("paf-relu[depth={}]", paf.mult_depth()),
                needed: paf.mult_depth() + 1,
                max_level,
            });
        }
        self.run_cheapest_cell(techniques, &candidates, max_level, relu_only)
    }

    /// The "direct replacement + progressive training" ablation (the
    /// green bars of Fig. 8): every operator is replaced up front, and
    /// the progressive schedule then fine-tunes step by step with the
    /// full approximation error present from the start.
    pub fn run_cell_direct_replace_progressive(
        &mut self,
        form: PafForm,
        relu_only: bool,
    ) -> ExperimentResult {
        self.reset();
        let base = CompositePaf::from_form(form);
        let pafs = vec![base.clone(); num_slots(&mut self.model).max(1)];
        // Direct replacement first ...
        replace_all_with(&mut self.model, &pafs, relu_only);
        let post_replacement_acc = evaluate(&mut self.model, &self.dataset, &self.config);
        // ... then the progressive (per-slot) training schedule. Each
        // PA step re-installs the slot's PAF, which is a no-op here
        // because the same coefficients are already in place.
        let techniques = TechniqueSet {
            pa: true,
            ..TechniqueSet::baseline_ds()
        };
        let mut sched = Scheduler::new(self.config, techniques);
        let final_acc = sched.run(&mut self.model, &self.dataset, &pafs, relu_only);
        ExperimentResult {
            label: "direct-replacement+progressive-training+DS".to_string(),
            form,
            original_acc: self.original_acc,
            post_replacement_acc,
            final_acc,
            events: sched.events().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_datasets::SynthSpec;
    use smartpaf_nn::mini_cnn;
    use smartpaf_tensor::Rng64;

    fn bench(seed: u64) -> Workbench {
        let spec = SynthSpec::tiny(seed);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig::test_scale(seed);
        let mut rng = Rng64::new(seed);
        let model = mini_cnn(spec.classes, 0.25, &mut rng);
        Workbench::new(model, dataset, config, 4)
    }

    #[test]
    fn reset_restores_accuracy() {
        let mut wb = bench(41);
        let base_acc = wb.original_acc();
        let _ = wb.run_cell(TechniqueSet::baseline_ds(), PafForm::F1G2, false);
        wb.reset();
        let acc = evaluate(&mut wb.model, &wb.dataset.clone(), &wb.config.clone());
        assert_eq!(acc, base_acc);
    }

    #[test]
    fn cell_produces_complete_result() {
        let mut wb = bench(42);
        let r = wb.run_cell(TechniqueSet::baseline_ds(), PafForm::F1G2, false);
        assert_eq!(r.label, "baseline+DS");
        assert!(r.original_acc > 0.0);
        assert!(!r.events.is_empty());
    }

    #[test]
    fn identical_cells_are_deterministic() {
        let mut wb = bench(43);
        let a = wb.run_cell(TechniqueSet::baseline_ds(), PafForm::F1G2, true);
        let b = wb.run_cell(TechniqueSet::baseline_ds(), PafForm::F1G2, true);
        assert_eq!(a.final_acc, b.final_acc);
        assert_eq!(a.post_replacement_acc, b.post_replacement_acc);
    }

    #[test]
    fn cheapest_cell_picks_low_cost_form() {
        let mut wb = bench(45);
        let candidates = [PafForm::MinimaxDeg27, PafForm::F1G2, PafForm::Alpha7];
        let (cost, result) = wb
            .run_cheapest_cell(
                TechniqueSet {
                    fine_tune: false,
                    ..TechniqueSet::baseline_ds()
                },
                &candidates,
                12,
                false,
            )
            .expect("all candidates fit a 12-level chain");
        // f1∘g2 is the cheapest of the three by exact ct-mults.
        assert_eq!(cost.form, PafForm::F1G2);
        assert_eq!(result.form, PafForm::F1G2);
        assert_eq!(cost.bootstraps, 0);
    }

    #[test]
    fn auto_candidates_match_explicit_full_set() {
        let mut wb = bench(46);
        let techniques = TechniqueSet {
            fine_tune: false,
            ..TechniqueSet::baseline_ds()
        };
        let (cost, _) = wb
            .run_cheapest_cell_auto(techniques, 12, false)
            .expect("every form fits a 12-level chain");
        assert_eq!(cost.form, PafForm::F1G2);
        // A 5-level chain fits nothing: typed error, not a panic.
        let err = wb
            .run_cheapest_cell_auto(techniques, 5, false)
            .expect_err("no form fits 5 levels");
        assert!(matches!(
            err,
            smartpaf_heinfer::RunError::AtomicDepthExceeded { .. }
        ));
    }

    #[test]
    fn ct_cell_differs_from_baseline() {
        let mut wb = bench(44);
        let base = wb.run_cell(
            TechniqueSet {
                fine_tune: false,
                ..TechniqueSet::baseline_ds()
            },
            PafForm::F1G2,
            false,
        );
        let ct = wb.run_cell(
            TechniqueSet {
                ct: true,
                fine_tune: false,
                ..TechniqueSet::baseline_ds()
            },
            PafForm::F1G2,
            false,
        );
        // CT changes coefficients, so post-replacement accuracy moves.
        assert_ne!(base.post_replacement_acc, ct.post_replacement_acc);
    }
}
