//! Basic training and evaluation loops shared by all experiments.

use crate::config::TrainConfig;
use smartpaf_datasets::{Split, SynthDataset};
use smartpaf_nn::{cross_entropy, AccuracyMeter, Adam, Mode, Model, OptimConfig};

/// Runs one epoch of training; returns `(mean loss, train accuracy)`.
pub fn train_epoch(
    model: &mut Model,
    dataset: &SynthDataset,
    opt: &mut Adam,
    config: &TrainConfig,
    epoch: usize,
) -> (f32, f32) {
    let mut meter = AccuracyMeter::new();
    let mut total_loss = 0.0f64;
    for b in 0..config.batches_per_epoch {
        let start = (epoch * config.batches_per_epoch + b) * config.batch_size;
        let (x, labels) = dataset.batch(Split::Train, start, config.batch_size);
        let logits = model.forward(&x, Mode::Train);
        let (loss, grad) = cross_entropy(&logits, &labels);
        meter.update(&logits, &labels);
        total_loss += loss as f64;
        model.backward(&grad);
        opt.step(&mut model.params_mut());
    }
    (
        (total_loss / config.batches_per_epoch as f64) as f32,
        meter.accuracy(),
    )
}

/// Evaluates validation accuracy over `config.val_batches` batches.
pub fn evaluate(model: &mut Model, dataset: &SynthDataset, config: &TrainConfig) -> f32 {
    let mut meter = AccuracyMeter::new();
    for b in 0..config.val_batches {
        let (x, labels) = dataset.batch(Split::Val, b * config.batch_size, config.batch_size);
        let logits = model.forward(&x, Mode::Eval);
        meter.update(&logits, &labels);
    }
    meter.accuracy()
}

/// Pre-trains a model (all operators exact) for `epochs` epochs and
/// returns the final validation accuracy. This stands in for the
/// paper's pretrained VGG-19/ResNet-18 checkpoints.
pub fn pretrain(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
    epochs: usize,
) -> f32 {
    // Pretraining uses a conventional lr, not the fine-tuning Tab. 5 lr.
    let mut opt = Adam::new(OptimConfig {
        paf: smartpaf_nn::GroupConfig {
            lr: 1e-3,
            weight_decay: 0.0,
        },
        other: smartpaf_nn::GroupConfig {
            lr: 1e-3,
            weight_decay: 1e-4,
        },
    });
    for e in 0..epochs {
        train_epoch(model, dataset, &mut opt, config, e);
    }
    evaluate(model, dataset, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_datasets::SynthSpec;
    use smartpaf_nn::mini_cnn;
    use smartpaf_tensor::Rng64;

    #[test]
    fn pretraining_beats_chance() {
        let spec = SynthSpec::tiny(11);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig {
            batches_per_epoch: 6,
            ..TrainConfig::test_scale(11)
        };
        let mut rng = Rng64::new(11);
        let mut model = mini_cnn(spec.classes, 0.25, &mut rng);
        let acc = pretrain(&mut model, &dataset, &config, 8);
        // 4 classes -> chance is 0.25.
        assert!(acc > 0.5, "pretrain accuracy {acc} not above chance");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let spec = SynthSpec::tiny(3);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig::test_scale(3);
        let mut rng = Rng64::new(3);
        let mut model = mini_cnn(spec.classes, 0.125, &mut rng);
        let a = evaluate(&mut model, &dataset, &config);
        let b = evaluate(&mut model, &dataset, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn train_epoch_reduces_loss() {
        let spec = SynthSpec::tiny(5);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig {
            batches_per_epoch: 6,
            ..TrainConfig::test_scale(5)
        };
        let mut rng = Rng64::new(5);
        let mut model = mini_cnn(spec.classes, 0.25, &mut rng);
        let mut opt = Adam::new(OptimConfig {
            paf: smartpaf_nn::GroupConfig {
                lr: 1e-3,
                weight_decay: 0.0,
            },
            other: smartpaf_nn::GroupConfig {
                lr: 1e-3,
                weight_decay: 0.0,
            },
        });
        let (first_loss, _) = train_epoch(&mut model, &dataset, &mut opt, &config, 0);
        let mut last_loss = first_loss;
        for e in 1..6 {
            let (l, _) = train_epoch(&mut model, &dataset, &mut opt, &config, e);
            last_loss = l;
        }
        assert!(
            last_loss < first_loss,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
    }
}
