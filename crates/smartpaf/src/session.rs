//! The typed-state `Session` API: **plan → compile → serve**.
//!
//! SmartPAF's end-to-end story — pick a composite PAF form on the
//! accuracy/latency Pareto frontier, then run encrypted inference with
//! it — used to be spread across five unrelated entry points
//! ([`Workbench`](crate::Workbench), [`LatencyRig`],
//! `HePipeline::eval_*`, [`BatchRunner`], and the
//! [`rank_forms_by_dry_run`](crate::rank_forms_by_dry_run) +
//! [`pareto_frontier`](crate::pareto_frontier) pair). A Session walks
//! the whole path behind one
//! three-state builder:
//!
//! ```text
//!   SessionBuilder ──plan()──► Plan ──compile()──► CompiledSession
//!   stages, params,            chosen form vector, keys + engines:
//!   objective, budget,         traced frontier,    infer / infer_batch /
//!   candidate forms            PlanReport          dry_run / latency_rig
//! ```
//!
//! Each arrow consumes the previous state, so the type system enforces
//! the order: you cannot serve before compiling and you cannot compile
//! before planning. Planning searches per-slot *form vectors* (one
//! [`FormId`] per ReLU/maxpool slot, like the paper's per-layer
//! replacement tables): a uniform pass over every candidate form seeds
//! a greedy per-slot refinement and a budgeted beam search, every
//! vector scored by a [`TraceBackend`](smartpaf_heinfer::TraceBackend)
//! dry run of the *caller's actual pipeline* — forced bootstraps and
//! exact ciphertext multiplications, never multiplicative depth alone.
//! The affine segments are probed exactly once
//! ([`HePipeline::with_pafs`] swaps form vectors in microseconds), and
//! a [`PlanBudget`] caps the dry runs so deep pipelines stay
//! seconds-scale.
//!
//! # Example
//!
//! ```
//! use smartpaf::{Objective, Session};
//! use smartpaf_ckks::CkksParams;
//! use smartpaf_nn::Linear;
//! use smartpaf_tensor::Rng64;
//!
//! let mut rng = Rng64::new(7);
//! let plan = Session::builder(&[8])
//!     .affine(Linear::new(8, 8, &mut rng))
//!     .relu(4.0)
//!     .params(CkksParams::toy())
//!     .objective(Objective::MinBootstraps)
//!     .plan()
//!     .unwrap();
//! println!("{}", plan.report());
//! let mut session = plan.compile().unwrap();
//! let x: Vec<f64> = (0..8).map(|i| (i as f64 - 4.0) / 4.0).collect();
//! let enc = session.infer(&x).unwrap();
//! let plain = session.infer_plain(&x).unwrap();
//! for (e, p) in enc.iter().zip(&plain) {
//!     assert!((e - p).abs() < 0.1);
//! }
//! ```

use crate::latency::LatencyRig;
use crate::pareto::{vector_pareto_frontier, ParetoPoint, VectorParetoPoint};
use crate::registry::PlanRegistry;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use smartpaf_ckks::cost::{bootstrap_modmuls, ct_mult_modmuls, rescale_modmuls, rotation_modmuls};
use smartpaf_ckks::{Bootstrapper, CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::{
    BatchRun, BatchRunner, HePipeline, LanePacker, PackError, PipelineBuilder, RunError, RunStats,
    Stage, TraceReport,
};
use smartpaf_nn::Layer;
use smartpaf_polyfit::{CompositeEval, CompositePaf, PafForm};
use smartpaf_tensor::Rng64;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A per-slot PAF form identifier — one entry of a *form vector*
/// (`Vec<FormId>`, one per ReLU/maxpool slot in stage order). Today
/// every slot draws from the built-in [`PafForm`] set, so this is an
/// alias; it names the planner's per-slot search axis.
pub type FormId = PafForm;

/// Calibrated cost of one 64-bit modular multiply on a workstation
/// core (order-of-magnitude of the paper's AMD 2990WX) — the single
/// constant behind both the planner's priced frontier and the hybrid
/// crate's Tab. 1 rows.
pub const SECONDS_PER_MODMUL: f64 = 1.2e-9;

/// Accurate-range edge of the fidelity grid (`sign_error` on
/// `[eps, 1]`), the paper's ε.
const FIDELITY_EPS: f64 = 0.05;

/// Sample count of the fidelity grid.
const FIDELITY_SAMPLES: usize = 400;

/// Unified error of planning, compilation, and serving.
///
/// Execution failures ([`RunError`]) pass through unchanged; the
/// planner adds the two failure modes the old entry points could only
/// panic about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A pipeline compilation or execution error from `smartpaf_heinfer`.
    Run(RunError),
    /// The candidate form list was empty.
    NoCandidates,
    /// Every candidate form's atomic depth exceeds the modulus chain —
    /// nothing can run at these parameters, bootstrapping included.
    NoFeasibleForm {
        /// Number of candidate forms tried.
        tried: usize,
        /// Rescale levels the chain offers.
        max_level: usize,
    },
    /// A slot-packing failure from `heinfer::pack` — a malformed
    /// packed batch (too many inputs, overlong input) or a pipeline
    /// with no packing capacity on this ring.
    Pack(PackError),
}

impl SessionError {
    /// True when a serving failure may have left the session's runtime
    /// state (worker pool, evaluator clones) in an unknown state —
    /// [`RunError::WorkerPanicked`] today. Such a session must not be
    /// reused; caches evict it so the next request rebuilds
    /// ([`SessionCache::evict_if_poisoned`](crate::SessionCache::evict_if_poisoned)).
    ///
    /// Input-validation errors ([`RunError::InputTooLong`], …) and
    /// deterministic structural errors are *not* poisoning: retrying
    /// the same session is safe, and evicting on them would let one
    /// misbehaving client force a full plan + keygen per bad request.
    ///
    /// # Example
    ///
    /// ```
    /// use smartpaf::SessionError;
    /// use smartpaf_heinfer::RunError;
    ///
    /// assert!(SessionError::Run(RunError::WorkerPanicked).poisons_session());
    /// assert!(!SessionError::Run(RunError::InputTooLong { len: 9, max: 4 }).poisons_session());
    /// assert!(!SessionError::NoCandidates.poisons_session());
    /// ```
    pub fn poisons_session(&self) -> bool {
        matches!(self, SessionError::Run(RunError::WorkerPanicked))
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Run(e) => write!(f, "{e}"),
            SessionError::NoCandidates => f.write_str("no candidate PAF forms supplied"),
            SessionError::NoFeasibleForm { tried, max_level } => write!(
                f,
                "none of the {tried} candidate form(s) fits a {max_level}-level chain"
            ),
            SessionError::Pack(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Run(e) => Some(e),
            SessionError::Pack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for SessionError {
    fn from(e: RunError) -> Self {
        SessionError::Run(e)
    }
}

impl From<PackError> for SessionError {
    fn from(e: PackError) -> Self {
        SessionError::Pack(e)
    }
}

/// What the planner optimises when choosing the PAF form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Cheapest traced deployment cost among the candidates whose
    /// sign-approximation fidelity stays within `max_acc_drop` of the
    /// most accurate candidate's.
    MinLatency {
        /// Largest acceptable fidelity drop versus the best candidate,
        /// in absolute `[0, 1]` fidelity units. Negative or NaN values
        /// are treated as `0.0` (only the best-fidelity candidates
        /// qualify).
        max_acc_drop: f64,
    },
    /// Fewest traced bootstraps outright (ties broken by exact
    /// ct-mults, then ReLU depth).
    MinBootstraps,
    /// Skip the search and deploy this form — still traced, so the
    /// plan carries its cost and the report prices it. Planning fails
    /// with the underlying [`RunError`] when the form cannot run on
    /// the chain at all.
    FixedForm(PafForm),
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::MinLatency { max_acc_drop } => {
                write!(f, "min-latency (max fidelity drop {max_acc_drop})")
            }
            Objective::MinBootstraps => f.write_str("min-bootstraps"),
            Objective::FixedForm(form) => write!(f, "fixed form {form}"),
        }
    }
}

/// Caps on the per-slot form-vector search, so planning deep pipelines
/// stays seconds-scale.
///
/// The uniform pass (one dry run per candidate form) always runs — it
/// is what seeds the search and what the legacy single-form path
/// reduces to. `max_dry_runs` bounds the *total* trace dry runs,
/// counting the uniform pass; once reached, the greedy and beam phases
/// stop where they stand and the best vector seen so far wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanBudget {
    /// Total trace dry runs the planner may spend (uniform pass
    /// included; the uniform pass itself is never truncated).
    pub max_dry_runs: usize,
    /// Vectors kept per beam round (`0` disables beam refinement,
    /// leaving greedy only).
    pub beam_width: usize,
    /// Beam refinement rounds.
    pub beam_rounds: usize,
}

impl Default for PlanBudget {
    /// Greedy per-slot refinement plus a small beam: 96 dry runs,
    /// beam width 3, 2 rounds — microseconds per dry run keeps even a
    /// capped-out search well under a second.
    fn default() -> Self {
        PlanBudget {
            max_dry_runs: 96,
            beam_width: 3,
            beam_rounds: 2,
        }
    }
}

impl PlanBudget {
    /// Disables the per-slot search entirely: only uniform form
    /// vectors are evaluated — the PR-4 single-form planner, byte-
    /// identical costs included.
    pub fn uniform() -> Self {
        PlanBudget {
            max_dry_runs: 0,
            beam_width: 0,
            beam_rounds: 0,
        }
    }

    /// Greedy per-slot refinement only (no beam), under the given
    /// dry-run cap.
    pub fn greedy(max_dry_runs: usize) -> Self {
        PlanBudget {
            max_dry_runs,
            beam_width: 0,
            beam_rounds: 0,
        }
    }
}

/// Traced deployment cost of one form vector on the caller's pipeline
/// — the vector analogue of [`FormCost`](crate::FormCost), read off a
/// full-pipeline dry run rather than the canonical single-ReLU probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorCost {
    /// Bootstraps one inference forces on the chain.
    pub bootstraps: usize,
    /// Exact ciphertext-ciphertext multiplications of one inference.
    pub ct_mults: usize,
    /// Deepest per-slot PAF-ReLU level consumption
    /// (`mult_depth() + 1`, maximised over the vector's slots; equals
    /// the single form's value for uniform vectors).
    pub relu_levels: usize,
}

impl VectorCost {
    /// The planner's lexicographic sort key: fewest forced bootstraps,
    /// then fewest exact ciphertext multiplications, then shallowest
    /// worst-slot ReLU — traced deployment cost, never depth alone.
    pub fn sort_key(&self) -> (usize, usize, usize) {
        (self.bootstraps, self.ct_mults, self.relu_levels)
    }
}

/// Namespace entry point of the typed-state chain;
/// [`Session::builder`] is the one way in.
pub struct Session;

impl Session {
    /// Starts a [`SessionBuilder`] for inputs of the given (batch-free)
    /// shape, e.g. `[3, 8, 8]` for a CHW image or `[16]` for a flat
    /// vector.
    pub fn builder(input_shape: &[usize]) -> SessionBuilder {
        SessionBuilder::new(input_shape)
    }
}

enum StageSpec {
    Affine(Box<dyn Layer>),
    Relu { scale: f64 },
    Max { k: usize, stride: usize, scale: f64 },
}

/// State 1 of the typed-state chain: collects the model stages (affine
/// layers plus PAF activation slots with their static scales), the
/// CKKS parameters, the planning [`Objective`], and the candidate form
/// set. [`SessionBuilder::plan`] consumes it.
pub struct SessionBuilder {
    input_shape: Vec<usize>,
    specs: Vec<StageSpec>,
    params: CkksParams,
    objective: Objective,
    candidates: Option<Vec<PafForm>>,
    budget: PlanBudget,
    seed: u64,
    registry: Option<PlanRegistry>,
}

/// Everything [`SessionBuilder::plan`] needs after the one-time model
/// probe: the folded base pipeline plus the resolved planning inputs.
/// Shared with [`PlanRegistry::load_plan`], which probes the same way
/// but skips the search.
pub(crate) struct ProbedModel {
    pub(crate) base: HePipeline,
    pub(crate) forms: Vec<PafForm>,
    pub(crate) candidate_list: Option<Vec<PafForm>>,
    pub(crate) params: CkksParams,
    pub(crate) objective: Objective,
    pub(crate) budget: PlanBudget,
    pub(crate) seed: u64,
    pub(crate) registry: Option<PlanRegistry>,
}

impl SessionBuilder {
    /// Starts a builder for inputs of the given (batch-free) shape.
    /// Defaults: [`CkksParams::default_params`],
    /// [`Objective::MinBootstraps`], every form that fits the chain
    /// ([`CompositePaf::candidate_forms`]), seed 7.
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-sized shape (same contract as
    /// [`PipelineBuilder::new`]).
    pub fn new(input_shape: &[usize]) -> Self {
        assert!(
            !input_shape.is_empty() && input_shape.iter().all(|&d| d > 0),
            "invalid input shape {input_shape:?}"
        );
        SessionBuilder {
            input_shape: input_shape.to_vec(),
            specs: Vec::new(),
            params: CkksParams::default_params(),
            objective: Objective::MinBootstraps,
            candidates: None,
            budget: PlanBudget::default(),
            seed: 7,
            registry: None,
        }
    }

    /// Appends an affine layer (conv / BN / pooling / linear — anything
    /// affine in eval mode; consecutive affine layers fuse into one
    /// probed matrix at plan time).
    pub fn affine(mut self, layer: impl Layer + 'static) -> Self {
        self.specs.push(StageSpec::Affine(Box::new(layer)));
        self
    }

    /// Appends a ReLU slot with static scale `s`; the planner fills in
    /// the PAF form. The `1/s` and `s` multiplications are folded into
    /// neighbouring affine stages where possible.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn relu(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.specs.push(StageSpec::Relu { scale });
        self
    }

    /// Appends a MaxPool slot (`k×k`, stride `stride`) with static
    /// scale `s`; the planner fills in the PAF form.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn maxpool(mut self, k: usize, stride: usize, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.specs.push(StageSpec::Max { k, stride, scale });
        self
    }

    /// Sets the CKKS parameters (ring dimension and modulus chain the
    /// plan is traced against and the compiled session runs under).
    pub fn params(mut self, params: CkksParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the planning objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Restricts the candidate form set (default: every built-in form
    /// whose ReLU fits the chain). Ignored by
    /// [`Objective::FixedForm`]. An empty set makes
    /// [`SessionBuilder::plan`] fail with
    /// [`SessionError::NoCandidates`].
    pub fn candidates(mut self, forms: &[PafForm]) -> Self {
        self.candidates = Some(forms.to_vec());
        self
    }

    /// Caps the per-slot form-vector search (default:
    /// [`PlanBudget::default`]; [`PlanBudget::uniform`] restores the
    /// single-form planner).
    pub fn budget(mut self, budget: PlanBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Seeds key generation, encryption, and bootstrap re-randomisation
    /// of the compiled session (planning itself is deterministic).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a plan registry: [`SessionBuilder::plan`] consults it
    /// for a *warm start* — when the objective is
    /// [`Objective::MinBootstraps`] and the pipeline has at least two
    /// PAF slots, the search is seeded from a cached neighbour's chosen
    /// form vector instead of the full uniform pass, typically cutting
    /// [`Plan::dry_runs_used`] strictly below the cold search's.
    /// Warm-started and cold plans choose by the same objective over
    /// the same greedy/beam refinement; only the seeding differs.
    ///
    /// Without this call planning never touches the filesystem, so
    /// every existing determinism pin holds verbatim.
    ///
    /// # Example
    ///
    /// ```
    /// use smartpaf::{PlanRegistry, Session};
    /// use smartpaf_ckks::CkksParams;
    /// use smartpaf_nn::Linear;
    /// use smartpaf_tensor::Rng64;
    ///
    /// let dir = std::env::temp_dir().join("smartpaf-registry-doc");
    /// let reg = PlanRegistry::open(&dir).unwrap();
    /// let mut rng = Rng64::new(7);
    /// let plan = Session::builder(&[4])
    ///     .affine(Linear::new(4, 4, &mut rng))
    ///     .relu(2.0)
    ///     .params(CkksParams::toy())
    ///     .registry(&reg)
    ///     .plan()
    ///     .unwrap();
    /// reg.save_plan(&plan).unwrap();
    /// ```
    pub fn registry(mut self, registry: &PlanRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Runs the trace-priced Pareto search over per-slot form vectors:
    /// probes the affine segments once, evaluates every candidate form
    /// uniformly ([`HePipeline::with_pafs`] +
    /// [`HePipeline::dry_run`], bootstraps allowed), then refines the
    /// uniform winner with a greedy per-slot sweep and a budgeted beam
    /// search — every vector scored by a full-pipeline dry run, capped
    /// by the [`PlanBudget`] — and picks the winner per the
    /// [`Objective`].
    ///
    /// Candidate forms whose uniform vector cannot run at all are
    /// skipped (recorded in the [`PlanReport`]); infeasible *mixed*
    /// vectors are silently dropped from the search. Structural
    /// pipeline errors (empty builder, untileable pool, …) surface as
    /// [`SessionError::Run`]. A pipeline with no PAF slot collapses to
    /// a single empty-vector candidate.
    pub fn plan(self) -> Result<Plan, SessionError> {
        plan_probed(self.probe()?)
    }

    /// The shared front half of planning and registry loading: resolves
    /// the candidate form list and probes the affine segments exactly
    /// once (with the first candidate installed; every later vector is
    /// a PAF swap).
    pub(crate) fn probe(self) -> Result<ProbedModel, SessionError> {
        let SessionBuilder {
            input_shape,
            specs,
            params,
            objective,
            candidates,
            budget,
            seed,
            registry,
        } = self;
        let candidate_list = candidates;
        let forms: Vec<PafForm> = match objective {
            Objective::FixedForm(form) => vec![form],
            _ => match &candidate_list {
                Some(c) if c.is_empty() => return Err(SessionError::NoCandidates),
                Some(c) => c.clone(),
                None => {
                    let all = CompositePaf::candidate_forms(params.depth);
                    if all.is_empty() {
                        return Err(SessionError::NoFeasibleForm {
                            tried: PafForm::all().len(),
                            max_level: params.depth,
                        });
                    }
                    all
                }
            },
        };

        let first = CompositePaf::from_form(forms[0]);
        let mut builder = PipelineBuilder::new(&input_shape);
        for spec in specs {
            builder = match spec {
                StageSpec::Affine(layer) => builder.affine_boxed(layer),
                StageSpec::Relu { scale } => builder.paf_relu(&first, scale),
                StageSpec::Max { k, stride, scale } => {
                    builder.paf_maxpool(k, stride, &first, scale)
                }
            };
        }
        let base = builder.try_compile()?.fold_scales();
        Ok(ProbedModel {
            base,
            forms,
            candidate_list,
            params,
            objective,
            budget,
            seed,
            registry,
        })
    }
}

/// The search half of [`SessionBuilder::plan`], over an already-probed
/// model.
fn plan_probed(probed: ProbedModel) -> Result<Plan, SessionError> {
    let ProbedModel {
        base,
        forms,
        candidate_list,
        params,
        objective,
        budget,
        seed,
        registry,
    } = probed;
    let num_slots = base.num_paf_stages();
    let max_level = params.depth;

    // The per-slot candidate lists drive the greedy/beam refinement
    // and the warm-start feasibility check; neither runs for fixed
    // forms or single-slot pipelines (there the uniform pass already
    // covers every vector).
    let searchable = num_slots >= 2 && !matches!(objective, Objective::FixedForm(_));
    let per_slot: Vec<Vec<PafForm>> = if searchable {
        match &candidate_list {
            Some(c) => vec![c.clone(); num_slots],
            None => CompositePaf::candidate_forms_per_slot(max_level, &base.paf_slot_kinds()),
        }
    } else {
        Vec::new()
    };

    let mut search = VectorSearch::new(&base, &params, max_level);
    let mut skipped: Vec<PafForm> = Vec::new();

    // Warm start: with a registry attached, seed the search from a
    // cached neighbour's chosen vector (one dry run) instead of the
    // uniform pass (one per candidate form). MinBootstraps only — the
    // MinLatency selection needs the uniform pass to establish the
    // best reachable fidelity, so it always plans cold.
    let mut warm_seeded = false;
    if searchable && matches!(objective, Objective::MinBootstraps) {
        if let Some(reg) = &registry {
            if let Some(seed_forms) = reg.find_seed(&base.describe(), &params, &per_slot) {
                if search.eval(seed_forms)?.is_ok() {
                    warm_seeded = true;
                }
                // An infeasible neighbour falls through to a cold plan.
            }
        }
    }

    if !warm_seeded {
        // Uniform pass: one dry run per candidate form, never
        // truncated — the PR-4 single-form planner, cost for cost.
        for &form in &forms {
            match search.eval(vec![form; num_slots])? {
                Ok(_) => {}
                Err(e) => {
                    if matches!(objective, Objective::FixedForm(_)) {
                        return Err(e.into());
                    }
                    skipped.push(form);
                }
            }
        }
    }
    if search.evaluated.is_empty() {
        return Err(SessionError::NoFeasibleForm {
            tried: forms.len(),
            max_level,
        });
    }
    // The best reachable fidelity is set by the uniform pass: a
    // mixed vector's worst-slot error can never beat the best
    // single form everywhere. (Warm starts skip the uniform pass, but
    // only under MinBootstraps, which never reads this bound.)
    let best_fid = search
        .evaluated
        .iter()
        .map(|c| c.fidelity)
        .fold(f64::NEG_INFINITY, f64::max);

    // Per-slot refinement: greedy sweeps seeded by the uniform
    // winner (or the warm-start vector), then a budgeted beam over
    // the best vectors seen.
    if searchable {
        let mut current = select_chosen(&search.evaluated, &objective, best_fid);
        let mut improved = true;
        while improved && search.dry_runs < budget.max_dry_runs {
            improved = false;
            for (slot, slot_forms) in per_slot.iter().enumerate() {
                for &form in slot_forms {
                    if search.dry_runs >= budget.max_dry_runs {
                        break;
                    }
                    if search.evaluated[current].forms[slot] == form {
                        continue;
                    }
                    let mut v = search.evaluated[current].forms.clone();
                    v[slot] = form;
                    if let Ok(idx) = search.eval(v)? {
                        if strictly_better(&search.evaluated, idx, current, &objective, best_fid) {
                            current = idx;
                            improved = true;
                        }
                    }
                }
            }
        }
        for _round in 0..budget.beam_rounds {
            if budget.beam_width == 0 || search.dry_runs >= budget.max_dry_runs {
                break;
            }
            let ranked = rank_indices(&search.evaluated, &objective, best_fid);
            let beam: Vec<Vec<PafForm>> = ranked
                .into_iter()
                .take(budget.beam_width)
                .map(|i| search.evaluated[i].forms.clone())
                .collect();
            let mut expanded = false;
            for parent in &beam {
                for (slot, slot_forms) in per_slot.iter().enumerate() {
                    for &form in slot_forms {
                        if search.dry_runs >= budget.max_dry_runs {
                            break;
                        }
                        if parent[slot] == form {
                            continue;
                        }
                        let mut v = parent.clone();
                        v[slot] = form;
                        if search.seen.contains_key(&v) {
                            continue;
                        }
                        expanded = true;
                        let _ = search.eval(v)?;
                    }
                }
            }
            if !expanded {
                break;
            }
        }
    }

    let VectorSearch {
        evaluated: planned,
        dry_runs,
        form_info,
        ..
    } = search;
    let chosen = select_chosen(&planned, &objective, best_fid);

    // Install the winner from the search's own per-form cache —
    // no composite rebuild or engine re-preparation.
    let chosen_pairs: Vec<(CompositePaf, Arc<CompositeEval>)> = planned[chosen]
        .forms
        .iter()
        .map(|f| {
            let info = &form_info
                .iter()
                .find(|(known, _)| known == f)
                .expect("every planned form is in the search cache")
                .1;
            (info.paf.clone(), Arc::clone(&info.engine))
        })
        .collect();
    let pipeline = base.try_with_prepared_pafs(&chosen_pairs)?;
    Ok(Plan::assemble(
        pipeline, chosen, planned, forms, skipped, params, objective, budget, dry_runs, seed,
    ))
}

/// Memoised form-vector evaluation: one [`HePipeline::dry_run`] per
/// distinct vector, with per-form composites and fidelity grids built
/// once and shared across every vector that uses the form.
/// Everything the planner caches about one candidate form: the
/// composite, its prepared evaluation engine (one schedule packing per
/// distinct form per *search*, shared by every vector and slot that
/// picks the form), and its sign-error grid.
struct FormInfo {
    paf: CompositePaf,
    engine: Arc<CompositeEval>,
    sign_error: f64,
}

struct VectorSearch<'a> {
    base: &'a HePipeline,
    params: &'a CkksParams,
    max_level: usize,
    /// Per-form cache, filled lazily.
    form_info: Vec<(PafForm, FormInfo)>,
    /// Every feasible vector evaluated, in evaluation order (uniform
    /// candidates first).
    evaluated: Vec<PlannedCandidate>,
    /// Vector → evaluated index, or the error that made it infeasible.
    seen: HashMap<Vec<PafForm>, Result<usize, RunError>>,
    /// Trace dry runs spent.
    dry_runs: usize,
}

impl<'a> VectorSearch<'a> {
    fn new(base: &'a HePipeline, params: &'a CkksParams, max_level: usize) -> Self {
        VectorSearch {
            base,
            params,
            max_level,
            form_info: Vec::new(),
            evaluated: Vec::new(),
            seen: HashMap::new(),
            dry_runs: 0,
        }
    }

    fn form_index(&mut self, form: PafForm) -> usize {
        if let Some(i) = self.form_info.iter().position(|(f, _)| *f == form) {
            return i;
        }
        let paf = CompositePaf::from_form(form);
        let engine = Arc::new(paf.prepare());
        let sign_error = paf.sign_error(FIDELITY_EPS, FIDELITY_SAMPLES);
        self.form_info.push((
            form,
            FormInfo {
                paf,
                engine,
                sign_error,
            },
        ));
        self.form_info.len() - 1
    }

    /// Scores one vector: `Ok(Ok(idx))` feasible (possibly cached),
    /// `Ok(Err(e))` infeasible on this chain (cached too), outer `Err`
    /// a structural failure that aborts the plan.
    fn eval(&mut self, forms: Vec<PafForm>) -> Result<Result<usize, RunError>, SessionError> {
        if let Some(cached) = self.seen.get(&forms) {
            return Ok(cached.clone());
        }
        let idxs: Vec<usize> = forms.iter().map(|&f| self.form_index(f)).collect();
        let pairs: Vec<(CompositePaf, Arc<CompositeEval>)> = idxs
            .iter()
            .map(|&i| {
                let info = &self.form_info[i].1;
                (info.paf.clone(), Arc::clone(&info.engine))
            })
            .collect();
        let pipe = self.base.try_with_prepared_pafs(&pairs)?;
        self.dry_runs += 1;
        match pipe.dry_run(self.max_level, true) {
            Ok((trace, _)) => {
                let worst_err = idxs
                    .iter()
                    .map(|&i| self.form_info[i].1.sign_error)
                    .fold(0.0, f64::max);
                let relu_levels = idxs
                    .iter()
                    .map(|&i| self.form_info[i].1.paf.mult_depth() + 1)
                    .max()
                    .unwrap_or(0);
                let cost = VectorCost {
                    bootstraps: trace.total_bootstraps(),
                    ct_mults: trace.total_ct_mults(),
                    relu_levels,
                };
                let priced_ms = trace_price_ms(self.params, &trace);
                let idx = self.evaluated.len();
                self.evaluated.push(PlannedCandidate {
                    forms: forms.clone(),
                    cost,
                    trace,
                    fidelity: 1.0 - worst_err,
                    priced_ms,
                });
                self.seen.insert(forms, Ok(idx));
                Ok(Ok(idx))
            }
            Err(e) if e.is_infeasible_form() => {
                self.seen.insert(forms, Err(e.clone()));
                Ok(Err(e))
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// The objective's winner among every evaluated vector — uniform
/// candidates come first, so a mixed vector must be *strictly* better
/// to displace the single-form choice.
fn select_chosen(cands: &[PlannedCandidate], objective: &Objective, best_fid: f64) -> usize {
    match objective {
        Objective::FixedForm(_) => 0,
        Objective::MinBootstraps => cands
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.cost.sort_key())
            .map(|(i, _)| i)
            .expect("non-empty candidate set"),
        Objective::MinLatency { max_acc_drop } => {
            // Negative or NaN budgets degrade to 0.0 (strictest), so
            // the best-fidelity candidate always qualifies and the
            // selection below cannot come up empty.
            let drop = max_acc_drop.max(0.0);
            cands
                .iter()
                .enumerate()
                .filter(|(_, c)| c.fidelity >= best_fid - drop)
                .min_by(|(_, a), (_, b)| {
                    a.priced_ms
                        .partial_cmp(&b.priced_ms)
                        .expect("finite traced price")
                        .then_with(|| a.cost.sort_key().cmp(&b.cost.sort_key()))
                })
                .map(|(i, _)| i)
                .expect("the best-fidelity candidate always satisfies the drop bound")
        }
    }
}

/// Whether candidate `idx` strictly improves on `cur` under the
/// objective (the greedy acceptance test).
fn strictly_better(
    cands: &[PlannedCandidate],
    idx: usize,
    cur: usize,
    objective: &Objective,
    best_fid: f64,
) -> bool {
    match objective {
        Objective::FixedForm(_) => false,
        Objective::MinBootstraps => cands[idx].cost.sort_key() < cands[cur].cost.sort_key(),
        Objective::MinLatency { max_acc_drop } => {
            let drop = max_acc_drop.max(0.0);
            if cands[idx].fidelity < best_fid - drop {
                return false;
            }
            match cands[idx]
                .priced_ms
                .partial_cmp(&cands[cur].priced_ms)
                .expect("finite traced price")
            {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    cands[idx].cost.sort_key() < cands[cur].cost.sort_key()
                }
            }
        }
    }
}

/// Evaluated indices ranked best-first under the objective (stable, so
/// earlier-evaluated vectors win ties) — the beam ordering.
fn rank_indices(cands: &[PlannedCandidate], objective: &Objective, best_fid: f64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..cands.len()).collect();
    match objective {
        Objective::FixedForm(_) | Objective::MinBootstraps => {
            idx.sort_by_key(|&i| cands[i].cost.sort_key());
        }
        Objective::MinLatency { max_acc_drop } => {
            let drop = max_acc_drop.max(0.0);
            idx.sort_by(|&a, &b| {
                let fa = cands[a].fidelity < best_fid - drop;
                let fb = cands[b].fidelity < best_fid - drop;
                fa.cmp(&fb)
                    .then_with(|| {
                        cands[a]
                            .priced_ms
                            .partial_cmp(&cands[b].priced_ms)
                            .expect("finite traced price")
                    })
                    .then_with(|| cands[a].cost.sort_key().cmp(&cands[b].cost.sort_key()))
            });
        }
    }
    idx
}

/// One feasible form vector as the planner evaluated it.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedCandidate {
    /// One PAF form per slot, in stage order (uniform candidates
    /// repeat a single form; empty for a pipeline without PAF slots).
    pub forms: Vec<FormId>,
    /// Traced deployment cost of the caller's pipeline with this
    /// vector.
    pub cost: VectorCost,
    /// The full per-stage trace the cost was read from (per-slot rows
    /// via [`TraceReport::paf_slots`]).
    pub trace: TraceReport,
    /// Worst-slot sign-approximation fidelity
    /// `1 − max_slot max|paf − sign|` on the accurate range (the
    /// frontier's accuracy axis).
    pub fidelity: f64,
    /// Analytic price of the traced schedule in milliseconds (the
    /// frontier's latency axis).
    pub priced_ms: f64,
}

impl PlannedCandidate {
    /// The single form when every slot agrees (`None` for genuinely
    /// mixed vectors and for pipelines without PAF slots).
    pub fn uniform_form(&self) -> Option<PafForm> {
        let first = *self.forms.first()?;
        self.forms.iter().all(|&f| f == first).then_some(first)
    }

    /// Human-readable name of the vector: the paper name for uniform
    /// vectors, a compact per-slot list (`[α=10|f1∘g2]`) for mixed
    /// ones.
    pub fn label(&self) -> String {
        match self.uniform_form() {
            Some(f) => f.paper_name().to_string(),
            None if self.forms.is_empty() => "(no PAF slots)".to_string(),
            None => {
                let names: Vec<&str> = self.forms.iter().map(|f| f.short_name()).collect();
                format!("[{}]", names.join("|"))
            }
        }
    }
}

/// State 2 of the typed-state chain: the outcome of the trace-priced
/// Pareto search — chosen form, the full frontier, every candidate's
/// traced cost, and a human-readable [`PlanReport`].
/// [`Plan::compile`] consumes it.
pub struct Plan {
    pipeline: HePipeline,
    chosen: usize,
    candidates: Vec<PlannedCandidate>,
    candidate_forms: Vec<PafForm>,
    points: Vec<ParetoPoint>,
    frontier: Vec<usize>,
    skipped: Vec<PafForm>,
    params: CkksParams,
    objective: Objective,
    budget: PlanBudget,
    dry_runs: usize,
    seed: u64,
    report: PlanReport,
}

impl fmt::Debug for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // HePipeline holds prepared engines without a Debug form; show
        // the planning outcome instead.
        f.debug_struct("Plan")
            .field("chosen", &self.chosen_forms())
            .field("objective", &self.objective)
            .field("candidates", &self.candidates)
            .field("frontier", &self.frontier)
            .field("skipped", &self.skipped)
            .finish_non_exhaustive()
    }
}

impl Plan {
    /// Derives the Pareto points, frontier, and report from the
    /// evaluated candidates and assembles the plan — the one
    /// constructor shared by the search
    /// ([`SessionBuilder::plan`]) and the registry
    /// ([`PlanRegistry::load_plan`], with `dry_runs` 0: a loaded plan
    /// spent no search in this process).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        pipeline: HePipeline,
        chosen: usize,
        candidates: Vec<PlannedCandidate>,
        candidate_forms: Vec<PafForm>,
        skipped: Vec<PafForm>,
        params: CkksParams,
        objective: Objective,
        budget: PlanBudget,
        dry_runs: usize,
        seed: u64,
    ) -> Plan {
        let points: Vec<ParetoPoint> = candidates
            .iter()
            .map(|c| ParetoPoint {
                latency_ms: c.priced_ms,
                accuracy: c.fidelity,
            })
            .collect();
        let vector_points: Vec<VectorParetoPoint> = candidates
            .iter()
            .map(|c| VectorParetoPoint {
                forms: c.forms.clone(),
                bootstraps: c.cost.bootstraps,
                ct_mults: c.cost.ct_mults,
                sign_error: 1.0 - c.fidelity,
            })
            .collect();
        let frontier = vector_pareto_frontier(&vector_points);
        let report = PlanReport::render(
            &objective,
            &params,
            &pipeline,
            &candidates,
            &frontier,
            chosen,
            &skipped,
            dry_runs,
            &budget,
        );
        Plan {
            pipeline,
            chosen,
            candidates,
            candidate_forms,
            points,
            frontier,
            skipped,
            params,
            objective,
            budget,
            dry_runs,
            seed,
            report,
        }
    }

    /// The form vector the objective selected — one [`FormId`] per PAF
    /// slot, in stage order.
    pub fn chosen_forms(&self) -> &[FormId] {
        &self.candidates[self.chosen].forms
    }

    /// The single chosen form of a *uniform* plan — the legacy
    /// single-form path ([`Objective::FixedForm`], one-slot pipelines,
    /// or a search that kept the uniform winner).
    ///
    /// # Panics
    ///
    /// Panics when the chosen vector is mixed or the pipeline has no
    /// PAF slot; use [`Plan::chosen_forms`] there.
    pub fn chosen_form(&self) -> PafForm {
        self.candidates[self.chosen]
            .uniform_form()
            .expect("mixed-form plan: use chosen_forms()")
    }

    /// Human-readable name of the chosen vector (paper name when
    /// uniform, compact per-slot list when mixed).
    pub fn chosen_label(&self) -> String {
        self.candidates[self.chosen].label()
    }

    /// The chosen candidate (cost, trace, fidelity, price).
    pub fn chosen(&self) -> &PlannedCandidate {
        &self.candidates[self.chosen]
    }

    /// Traced deployment cost of the chosen vector.
    pub fn chosen_cost(&self) -> &VectorCost {
        &self.candidates[self.chosen].cost
    }

    /// Full per-stage trace of the chosen vector on the parameter
    /// chain — level schedule, bootstraps, exact ct-mults, per-slot
    /// rows via [`TraceReport::paf_slots`].
    pub fn chosen_trace(&self) -> &TraceReport {
        &self.candidates[self.chosen].trace
    }

    /// Bootstraps one inference of the chosen vector will trigger — by
    /// construction equal to what the compiled session measures on an
    /// encrypted run.
    pub fn traced_bootstraps(&self) -> usize {
        self.candidates[self.chosen].cost.bootstraps
    }

    /// Every feasible vector evaluated, in evaluation order (uniform
    /// candidates first, then searched vectors).
    pub fn candidates(&self) -> &[PlannedCandidate] {
        &self.candidates
    }

    /// One `(priced latency, fidelity)` point per feasible candidate,
    /// parallel to [`Plan::candidates`].
    pub fn pareto_points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Indices (into [`Plan::candidates`]) of the Pareto-optimal
    /// vectors under three-axis dominance — traced bootstraps, exact
    /// ct-mults, worst-slot sign error
    /// ([`vector_pareto_frontier`]) — sorted cheapest-first, with
    /// duplicate form vectors deduplicated.
    pub fn frontier_indices(&self) -> &[usize] {
        &self.frontier
    }

    /// The Pareto frontier as `(priced latency, fidelity)` points, in
    /// frontier order.
    pub fn frontier_points(&self) -> Vec<ParetoPoint> {
        self.frontier.iter().map(|&i| self.points[i]).collect()
    }

    /// Candidate forms skipped because their *uniform* vector cannot
    /// run on the chain at all.
    pub fn skipped_forms(&self) -> &[PafForm] {
        &self.skipped
    }

    /// The objective the plan optimised.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The search budget the plan ran under.
    pub fn budget(&self) -> PlanBudget {
        self.budget
    }

    /// Trace dry runs the planner spent (uniform pass + greedy +
    /// beam). At most `budget.max_dry_runs` once the uniform pass is
    /// through; the uniform pass itself is never truncated.
    pub fn dry_runs_used(&self) -> usize {
        self.dry_runs
    }

    /// The resolved candidate form list the search drew uniform
    /// vectors from (explicit [`SessionBuilder::candidates`], or every
    /// form fitting the chain) — part of the registry's content
    /// address, because it changes what the search can find.
    pub fn candidate_forms(&self) -> &[PafForm] {
        &self.candidate_forms
    }

    /// The composites installed in the planned pipeline's PAF slots,
    /// in stage order — what a registry artifact stores so loading can
    /// rebuild the exact pipeline without re-deriving coefficients.
    pub(crate) fn chosen_composites(&self) -> Vec<CompositePaf> {
        self.pipeline
            .stages()
            .iter()
            .filter_map(|s| match s {
                Stage::Affine { .. } => None,
                Stage::PafRelu { paf, .. } | Stage::PafMax { paf, .. } => Some(paf.clone()),
            })
            .collect()
    }

    /// The CKKS parameters the plan was traced against.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The compiled pipeline (chosen form vector installed, scales
    /// folded).
    pub fn pipeline(&self) -> &HePipeline {
        &self.pipeline
    }

    /// The human-readable planning report.
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Builds the runtime: CKKS context, key chain, evaluator, and
    /// bootstrapper — the expensive one-time setup — and returns the
    /// serving state. The pipeline traced at plan time is the exact
    /// pipeline served, so plan-time costs match run-time measurements.
    ///
    /// # Errors
    ///
    /// [`RunError::SlotMismatch`] when the pipeline's padded dimension
    /// does not divide the ring's slot count.
    pub fn compile(self) -> Result<CompiledSession, SessionError> {
        let ctx = self.params.build();
        if !ctx.slots().is_multiple_of(self.pipeline.dim()) {
            return Err(SessionError::Run(RunError::SlotMismatch {
                dim: self.pipeline.dim(),
                slots: ctx.slots(),
            }));
        }
        let mut rng = Rng64::new(self.seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        let pe = PafEvaluator::new(Evaluator::new(&keys));
        let bootstrapper = Bootstrapper::new(
            pe.evaluator().clone(),
            self.pipeline.dim(),
            self.seed ^ 0x9e37_79b9_7f4a_7c15,
        );
        let chosen = self.candidates[self.chosen].clone();
        Ok(CompiledSession {
            pipeline: self.pipeline,
            pe,
            bootstrapper,
            rng,
            runner: BatchRunner::auto(),
            report: self.report,
            chosen,
            seed: self.seed,
            last_stats: None,
            packers: HashMap::new(),
        })
    }
}

/// State 3 of the typed-state chain: keys generated, engines prepared,
/// ready to serve. Single inputs go through [`CompiledSession::infer`],
/// batches through [`CompiledSession::infer_batch`] (sharded across
/// worker threads by a [`BatchRunner`]).
pub struct CompiledSession {
    pipeline: HePipeline,
    pe: PafEvaluator,
    bootstrapper: Bootstrapper,
    rng: Rng64,
    runner: BatchRunner,
    report: PlanReport,
    chosen: PlannedCandidate,
    seed: u64,
    last_stats: Option<RunStats>,
    /// Lane-expanded packing runtimes, one per lane count served, each
    /// with its own [`Bootstrapper`] at the expanded dimension (built
    /// lazily by [`CompiledSession::infer_batch_packed`]).
    packers: HashMap<usize, (LanePacker, Bootstrapper)>,
}

impl CompiledSession {
    /// Encrypts `x`, runs the pipeline under CKKS (bootstrapping when
    /// the chain runs dry), and decrypts the logical output. The run's
    /// statistics are retained in [`CompiledSession::last_stats`].
    pub fn infer(&mut self, x: &[f64]) -> Result<Vec<f64>, SessionError> {
        let padded = self.pipeline.try_pad_input(x)?;
        let ct = self
            .pe
            .evaluator()
            .encrypt_replicated(&padded, &mut self.rng);
        let (out_ct, stats) =
            self.pipeline
                .try_eval_encrypted(&self.pe, Some(&self.bootstrapper), &ct)?;
        let out = self
            .pe
            .evaluator()
            .decrypt_values(&out_ct, self.pipeline.output_dim());
        self.last_stats = Some(stats);
        Ok(out)
    }

    /// Encrypts a batch and shards it across the session's
    /// [`BatchRunner`] workers (one evaluator clone per worker),
    /// returning decrypted outputs and per-input statistics in input
    /// order.
    pub fn infer_batch(&mut self, inputs: &[Vec<f64>]) -> Result<BatchRun<Vec<f64>>, SessionError> {
        let mut cts = Vec::with_capacity(inputs.len());
        for x in inputs {
            let padded = self.pipeline.try_pad_input(x)?;
            cts.push(
                self.pe
                    .evaluator()
                    .encrypt_replicated(&padded, &mut self.rng),
            );
        }
        let run =
            self.runner
                .run_encrypted(&self.pipeline, &self.pe, Some(&self.bootstrapper), &cts)?;
        let outputs: Vec<Vec<f64>> = run
            .outputs
            .iter()
            .map(|ct| {
                self.pe
                    .evaluator()
                    .decrypt_values(ct, self.pipeline.output_dim())
            })
            .collect();
        Ok(BatchRun {
            outputs,
            stats: run.stats,
            wall: run.wall,
            threads: run.threads,
        })
    }

    /// Slots one input occupies in a ciphertext: the pipeline's padded
    /// dimension, i.e. the slot-packing lane stride.
    pub fn slots_per_input(&self) -> usize {
        self.pipeline.dim()
    }

    /// How many inputs one ciphertext can multiplex for this session —
    /// the slot-packing capacity `K = slots / padded_dim` (1 means
    /// packing cannot help at these parameters).
    pub fn lane_capacity(&self) -> usize {
        self.pipeline
            .lane_capacity(self.pe.evaluator().context().slots())
            .max(1)
    }

    /// Slot-packed batch inference: multiplexes up to
    /// [`CompiledSession::lane_capacity`] inputs per ciphertext at
    /// stride [`CompiledSession::slots_per_input`], runs the
    /// lane-expanded pipeline once per ciphertext (sharded across the
    /// session's [`BatchRunner`] workers), and demultiplexes the
    /// decrypted outputs — one full encrypted eval amortized over a
    /// whole lane-group instead of one per request.
    ///
    /// The lane count adapts to the batch: `min(capacity,
    /// next_power_of_two(len))`, so a 4-request batch on a 32-capacity
    /// ring pays a 4-lane expansion, not a 32-lane one. Expanded
    /// pipelines (and their bootstrappers, seeded independently of the
    /// unpacked path) are cached per lane count, so the expansion cost
    /// is paid once per session.
    ///
    /// Outputs are in input order and match sequential
    /// [`CompiledSession::infer`] calls within CKKS noise; on
    /// 1-capacity rings (or batches of one) this falls back to
    /// [`CompiledSession::infer_batch`]. The returned
    /// [`BatchRun::stats`] hold one record per *packed ciphertext*, in
    /// dispatch order — not one per input.
    pub fn infer_batch_packed(
        &mut self,
        inputs: &[Vec<f64>],
    ) -> Result<BatchRun<Vec<f64>>, SessionError> {
        let capacity = self.lane_capacity();
        if capacity <= 1 || inputs.len() <= 1 {
            return self.infer_batch(inputs);
        }
        let lanes = inputs.len().next_power_of_two().min(capacity);
        if !self.packers.contains_key(&lanes) {
            let slots = self.pe.evaluator().context().slots();
            let packer = LanePacker::new(&self.pipeline, slots, lanes)?;
            // The packed path refreshes at the expanded dimension with
            // its own randomness stream: a different derivation
            // constant than the unpacked bootstrapper, plus the lane
            // count, so no stream is shared across layouts.
            let bs = Bootstrapper::new(
                self.pe.evaluator().clone(),
                packer.expanded().dim(),
                self.seed ^ 0xc2b2_ae3d_27d4_eb4f ^ lanes as u64,
            );
            self.packers.insert(lanes, (packer, bs));
        }
        let (packer, bs) = self.packers.get(&lanes).expect("cached above");
        let mut batches = Vec::with_capacity(inputs.len().div_ceil(lanes));
        let mut cts = Vec::with_capacity(batches.capacity());
        for group in inputs.chunks(lanes) {
            let batch = packer.pack(group)?;
            cts.push(packer.encrypt(&batch, self.pe.evaluator(), &mut self.rng));
            batches.push(batch);
        }
        let run = self.runner.run_packed(packer, &self.pe, Some(bs), &cts)?;
        let mut outputs = Vec::with_capacity(inputs.len());
        for (batch, out_ct) in batches.iter().zip(&run.outputs) {
            outputs.extend(packer.decrypt(out_ct, batch, self.pe.evaluator()));
        }
        Ok(BatchRun {
            outputs,
            stats: run.stats,
            wall: run.wall,
            threads: run.threads,
        })
    }

    /// Exact plaintext reference of the served pipeline (same
    /// arithmetic, PAF approximation included).
    pub fn infer_plain(&self, x: &[f64]) -> Result<Vec<f64>, SessionError> {
        self.pipeline.try_pad_input(x)?;
        Ok(self.pipeline.eval_plain(x))
    }

    /// Plaintext batch through the session's [`BatchRunner`] workers.
    pub fn infer_batch_plain(
        &self,
        inputs: &[Vec<f64>],
    ) -> Result<BatchRun<Vec<f64>>, SessionError> {
        Ok(self.runner.run_plain(&self.pipeline, inputs)?)
    }

    /// Arithmetic-free trace of one inference over the runtime chain —
    /// the instant cost oracle, identical to the plan-time trace.
    pub fn dry_run(&self) -> Result<(TraceReport, RunStats), SessionError> {
        let max_level = self.pe.evaluator().context().max_level();
        Ok(self.pipeline.dry_run(max_level, true)?)
    }

    /// The planning report carried over from [`Plan`].
    pub fn plan_report(&self) -> &PlanReport {
        &self.report
    }

    /// The form vector the plan selected — one [`FormId`] per PAF
    /// slot, in stage order.
    pub fn chosen_forms(&self) -> &[FormId] {
        &self.chosen.forms
    }

    /// The single chosen form of a *uniform* plan.
    ///
    /// # Panics
    ///
    /// Panics when the served vector is mixed or the pipeline has no
    /// PAF slot; use [`CompiledSession::chosen_forms`] there.
    pub fn chosen_form(&self) -> PafForm {
        self.chosen
            .uniform_form()
            .expect("mixed-form plan: use chosen_forms()")
    }

    /// Human-readable name of the served vector (paper name when
    /// uniform, compact per-slot list when mixed).
    pub fn chosen_label(&self) -> String {
        self.chosen.label()
    }

    /// Traced deployment cost of the chosen vector.
    pub fn chosen_cost(&self) -> &VectorCost {
        &self.chosen.cost
    }

    /// The chosen vector's plan-time trace.
    pub fn chosen_trace(&self) -> &TraceReport {
        &self.chosen.trace
    }

    /// Statistics of the most recent [`CompiledSession::infer`] run.
    pub fn last_stats(&self) -> Option<&RunStats> {
        self.last_stats.as_ref()
    }

    /// Bootstraps performed by this session so far, across all runs —
    /// the unpacked path plus every cached packed layout.
    pub fn total_bootstraps(&self) -> usize {
        self.bootstrapper.refresh_count()
            + self
                .packers
                .values()
                .map(|(_, bs)| bs.refresh_count())
                .sum::<usize>()
    }

    /// The served pipeline.
    pub fn pipeline(&self) -> &HePipeline {
        &self.pipeline
    }

    /// Replaces the batch sharding policy (default:
    /// [`BatchRunner::auto`]).
    pub fn set_batch_runner(&mut self, runner: BatchRunner) {
        self.runner = runner;
    }

    /// Worker threads [`CompiledSession::infer_batch`] shards across.
    pub fn threads(&self) -> usize {
        self.runner.threads()
    }

    /// A wall-clock measurement rig sharing this session's context and
    /// keys (no second key generation).
    pub fn latency_rig(&self) -> LatencyRig {
        LatencyRig::from_paf_evaluator(self.pe.clone(), self.seed)
    }
}

/// Human-readable summary of a plan: one priced row per candidate,
/// frontier and chosen markers, skipped forms. Renders with `Display`.
#[derive(Debug, Clone)]
pub struct PlanReport {
    text: String,
    /// Byte offset of the per-slot table within `text` (`None` for a
    /// pipeline without PAF slots).
    per_slot_start: Option<usize>,
}

impl PlanReport {
    /// The rendered report.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Just the per-slot table of the chosen vector (one row per
    /// ReLU/maxpool slot: stage, form, levels, bootstraps, ct-mults) —
    /// the section demos print on its own. `None` when the pipeline
    /// has no PAF slot.
    pub fn per_slot_table(&self) -> Option<&str> {
        self.per_slot_start.map(|start| &self.text[start..])
    }

    #[allow(clippy::too_many_arguments)]
    fn render(
        objective: &Objective,
        params: &CkksParams,
        pipeline: &HePipeline,
        candidates: &[PlannedCandidate],
        frontier: &[usize],
        chosen: usize,
        skipped: &[PafForm],
        dry_runs: usize,
        budget: &PlanBudget,
    ) -> PlanReport {
        use fmt::Write;
        let mut text = String::new();
        let _ = writeln!(
            text,
            "plan: objective {objective}; chain N={} depth={}; {} stage(s), {} PAF slot(s), dim {}",
            params.n,
            params.depth,
            pipeline.stages().len(),
            pipeline.num_paf_stages(),
            pipeline.dim(),
        );
        let _ = writeln!(
            text,
            "  {} vector(s) evaluated in {} dry run(s) (budget {})",
            candidates.len(),
            dry_runs,
            budget.max_dry_runs,
        );
        let _ = writeln!(
            text,
            "  {:<20} {:>6} {:>9} {:>10} {:>9} {:>10}",
            "forms", "levels", "ct-mults", "bootstraps", "fidelity", "est-ms"
        );
        for (i, c) in candidates.iter().enumerate() {
            let mark = if i == chosen {
                '*'
            } else if frontier.contains(&i) {
                '+'
            } else {
                ' '
            };
            let _ = writeln!(
                text,
                "{mark} {:<20} {:>6} {:>9} {:>10} {:>9.4} {:>10.2}",
                c.label(),
                c.cost.relu_levels,
                c.cost.ct_mults,
                c.cost.bootstraps,
                c.fidelity,
                c.priced_ms,
            );
        }
        let _ = writeln!(text, "  (* chosen, + on the Pareto frontier)");
        if !skipped.is_empty() {
            let names: Vec<&str> = skipped.iter().map(|f| f.paper_name()).collect();
            let _ = writeln!(
                text,
                "  skipped (atomic depth exceeds the chain): {}",
                names.join(", ")
            );
        }
        // Per-slot table of the chosen vector: which form each
        // ReLU/maxpool slot got and what it costs there, read off the
        // trace's slot-tagged rows.
        let chosen_cand = &candidates[chosen];
        let mut per_slot_start = None;
        if !chosen_cand.forms.is_empty() {
            per_slot_start = Some(text.len());
            let _ = writeln!(text, "  per-slot ({}):", chosen_cand.label());
            let _ = writeln!(
                text,
                "    {:>4} {:<28} {:<10} {:>6} {:>10} {:>9}",
                "slot", "stage", "form", "levels", "bootstraps", "ct-mults"
            );
            for (stage, form) in chosen_cand.trace.paf_slots().iter().zip(&chosen_cand.forms) {
                let _ = writeln!(
                    text,
                    "    {:>4} {:<28} {:<10} {:>6} {:>10} {:>9}",
                    stage.slot.expect("paf_slots rows carry a slot index"),
                    stage.label,
                    form.short_name(),
                    stage.levels,
                    stage.bootstraps,
                    stage.ct_mults,
                );
            }
        }
        PlanReport {
            text,
            per_slot_start,
        }
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Converts a traced schedule into modelled 64-bit modular multiplies:
/// every exact ct-mult (plus its rescale) is charged at the trace's
/// mean live limb count, every traced rotation at the same limb
/// count's Galois key-switch cost, and every forced refresh at the
/// full analytic bootstrap cost. All three prices dispatch on the
/// parameters' key-switch gadget (`CkksParams::ks_digit_limbs`), so a
/// plan re-priced under the hybrid gadget reflects its cheaper
/// relinearisations. The one conversion behind the planner's frontier
/// pricing and the hybrid crate's Tab. 1 rows.
pub fn trace_modmuls(params: &CkksParams, report: &TraceReport) -> u128 {
    let top = params.depth + 1;
    let avg_limbs = (top + report.final_level + 1).div_ceil(2).max(1);
    let per_ct_mult =
        ct_mult_modmuls(params, avg_limbs) + rescale_modmuls(params, avg_limbs.saturating_sub(1));
    report.total_ct_mults() as u128 * per_ct_mult
        + report.total_rotations() as u128 * rotation_modmuls(params, avg_limbs)
        + report.total_bootstraps() as u128 * bootstrap_modmuls(params)
}

/// Prices a traced schedule in milliseconds with
/// [`trace_modmuls`] × [`SECONDS_PER_MODMUL`].
fn trace_price_ms(params: &CkksParams, report: &TraceReport) -> f64 {
    trace_modmuls(params, report) as f64 * SECONDS_PER_MODMUL * 1e3
}

// ---------------------------------------------------------------------
// Wire formats (docs/ARTIFACT_FORMAT.md): planning outcomes serialize;
// pipelines, keys, and engines never do. `Plan` has no standalone
// `Deserialize` for exactly that reason — reconstruction needs the
// model, so it goes through `PlanRegistry::load_plan`.

impl Serialize for Objective {
    fn serialize(&self) -> Value {
        match self {
            Objective::MinLatency { max_acc_drop } => Value::object([
                ("kind", "min_latency".serialize()),
                ("max_acc_drop", max_acc_drop.serialize()),
            ]),
            Objective::MinBootstraps => Value::object([("kind", "min_bootstraps".serialize())]),
            Objective::FixedForm(form) => Value::object([
                ("kind", "fixed_form".serialize()),
                ("form", form.serialize()),
            ]),
        }
    }
}

impl Deserialize for Objective {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        let kind = String::deserialize(value.req("kind")?)?;
        match kind.as_str() {
            "min_latency" => Ok(Objective::MinLatency {
                max_acc_drop: f64::deserialize(value.req("max_acc_drop")?)?,
            }),
            "min_bootstraps" => Ok(Objective::MinBootstraps),
            "fixed_form" => Ok(Objective::FixedForm(PafForm::deserialize(
                value.req("form")?,
            )?)),
            other => Err(SerdeError::custom(format!(
                "unknown objective kind `{other}`"
            ))),
        }
    }
}

impl Serialize for PlanBudget {
    fn serialize(&self) -> Value {
        Value::object([
            ("max_dry_runs", self.max_dry_runs.serialize()),
            ("beam_width", self.beam_width.serialize()),
            ("beam_rounds", self.beam_rounds.serialize()),
        ])
    }
}

impl Deserialize for PlanBudget {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        Ok(PlanBudget {
            max_dry_runs: usize::deserialize(value.req("max_dry_runs")?)?,
            beam_width: usize::deserialize(value.req("beam_width")?)?,
            beam_rounds: usize::deserialize(value.req("beam_rounds")?)?,
        })
    }
}

impl Serialize for VectorCost {
    fn serialize(&self) -> Value {
        Value::object([
            ("bootstraps", self.bootstraps.serialize()),
            ("ct_mults", self.ct_mults.serialize()),
            ("relu_levels", self.relu_levels.serialize()),
        ])
    }
}

impl Deserialize for VectorCost {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        Ok(VectorCost {
            bootstraps: usize::deserialize(value.req("bootstraps")?)?,
            ct_mults: usize::deserialize(value.req("ct_mults")?)?,
            relu_levels: usize::deserialize(value.req("relu_levels")?)?,
        })
    }
}

impl Serialize for PlannedCandidate {
    fn serialize(&self) -> Value {
        Value::object([
            ("forms", self.forms.serialize()),
            ("cost", self.cost.serialize()),
            ("trace", self.trace.serialize()),
            ("fidelity", self.fidelity.serialize()),
            ("priced_ms", self.priced_ms.serialize()),
        ])
    }
}

impl Deserialize for PlannedCandidate {
    fn deserialize(value: &Value) -> Result<Self, SerdeError> {
        Ok(PlannedCandidate {
            forms: Vec::<PafForm>::deserialize(value.req("forms")?)?,
            cost: VectorCost::deserialize(value.req("cost")?)?,
            trace: TraceReport::deserialize(value.req("trace")?)?,
            fidelity: f64::deserialize(value.req("fidelity")?)?,
            priced_ms: f64::deserialize(value.req("priced_ms")?)?,
        })
    }
}

impl Serialize for Plan {
    /// The planning *outcome* — every evaluated candidate, the chosen
    /// index and its installed composites, the skipped forms, and the
    /// planning inputs (params, objective, budget, candidate list).
    /// The probed pipeline, the serving seed, and all key material are
    /// deliberately absent; reconstruction therefore goes through
    /// [`PlanRegistry::load_plan`] with the caller's own
    /// [`SessionBuilder`].
    fn serialize(&self) -> Value {
        Value::object([
            ("params", self.params.serialize()),
            ("objective", self.objective.serialize()),
            ("budget", self.budget.serialize()),
            ("candidate_forms", self.candidate_forms.serialize()),
            ("candidates", self.candidates.serialize()),
            ("chosen", self.chosen.serialize()),
            ("chosen_composites", self.chosen_composites().serialize()),
            ("skipped", self.skipped.serialize()),
            ("dry_runs", self.dry_runs.serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_nn::Linear;

    /// `blocks` affine→ReLU blocks over a flat 4-vector on the toy ring.
    fn builder(blocks: usize, scale: f64, layer_seed: u64) -> SessionBuilder {
        let mut rng = Rng64::new(layer_seed);
        let mut b = Session::builder(&[4]).params(CkksParams::toy());
        for _ in 0..blocks {
            b = b.affine(Linear::new(4, 4, &mut rng)).relu(scale);
        }
        b
    }

    #[test]
    fn plan_selects_by_traced_cost_not_depth() {
        // Three ReLU blocks exceed the 12-level toy chain for every
        // form, so the ranking is decided by traced bootstraps +
        // ct-mults: the uniform f1∘g2 vector beats the 27-degree
        // comparator, and the per-slot search can only improve on it.
        let plan = builder(3, 2.0, 11)
            .candidates(&[PafForm::MinimaxDeg27, PafForm::F1G2])
            .objective(Objective::MinBootstraps)
            .plan()
            .expect("both forms fit a 12-level chain");
        // Uniform candidates are evaluated first, in candidate order.
        assert_eq!(
            plan.candidates()[0].uniform_form(),
            Some(PafForm::MinimaxDeg27)
        );
        assert_eq!(plan.candidates()[1].uniform_form(), Some(PafForm::F1G2));
        let deep = &plan.candidates()[0];
        let cheap = &plan.candidates()[1];
        assert!(deep.cost.bootstraps > cheap.cost.bootstraps);
        assert!(deep.cost.ct_mults > cheap.cost.ct_mults);
        // The chosen vector is at least as cheap as the best uniform,
        // and every entry comes from the candidate set.
        assert!(plan.chosen_cost().sort_key() <= cheap.cost.sort_key());
        assert_eq!(plan.chosen_forms().len(), 3);
        assert!(plan
            .chosen_forms()
            .iter()
            .all(|f| [PafForm::MinimaxDeg27, PafForm::F1G2].contains(f)));
        // The frontier dedupes and dominates over the vector axes;
        // both uniform endpoints of the trade-off survive unless a
        // mixed vector dominates one of them.
        assert!(!plan.frontier_indices().is_empty());
    }

    #[test]
    fn min_latency_objective_trades_fidelity_for_cost() {
        let forms = [PafForm::F1G2, PafForm::MinimaxDeg27];
        // Zero tolerated drop: the most accurate form wins despite its
        // traced cost.
        let strict = builder(1, 2.0, 12)
            .candidates(&forms)
            .objective(Objective::MinLatency { max_acc_drop: 0.0 })
            .plan()
            .expect("plannable");
        assert_eq!(strict.chosen_form(), PafForm::MinimaxDeg27);
        // A generous budget flips the choice to the cheap form (f1∘g2's
        // fidelity on [0.05, 1] is ~0.24 vs the comparator's ~0.98).
        let relaxed = builder(1, 2.0, 12)
            .candidates(&forms)
            .objective(Objective::MinLatency { max_acc_drop: 0.8 })
            .plan()
            .expect("plannable");
        assert_eq!(relaxed.chosen_form(), PafForm::F1G2);
        assert!(relaxed.chosen().priced_ms < strict.chosen().priced_ms);
    }

    #[test]
    fn degenerate_min_latency_budgets_fall_back_to_strictest() {
        // Negative / NaN budgets behave like 0.0 instead of filtering
        // out every candidate and panicking.
        for bad in [-1.0, f64::NAN] {
            let plan = builder(1, 2.0, 21)
                .candidates(&[PafForm::F1G2, PafForm::MinimaxDeg27])
                .objective(Objective::MinLatency { max_acc_drop: bad })
                .plan()
                .expect("degenerate budget must not panic");
            assert_eq!(plan.chosen_form(), PafForm::MinimaxDeg27, "drop {bad}");
        }
    }

    #[test]
    fn fixed_form_objective_skips_the_search() {
        let plan = builder(1, 2.0, 13)
            .objective(Objective::FixedForm(PafForm::Alpha7))
            .plan()
            .expect("alpha7 fits");
        assert_eq!(plan.chosen_form(), PafForm::Alpha7);
        assert_eq!(plan.candidates().len(), 1);
        assert!(plan.report().as_str().contains("fixed form"));
    }

    #[test]
    fn fixed_form_beyond_chain_is_a_run_error() {
        let err = builder(1, 2.0, 14)
            .params(CkksParams {
                depth: 8,
                ..CkksParams::toy()
            })
            .objective(Objective::FixedForm(PafForm::MinimaxDeg27))
            .plan()
            .expect_err("depth 11 ReLU cannot fit 8 levels");
        assert!(matches!(
            err,
            SessionError::Run(RunError::AtomicDepthExceeded { .. })
        ));
    }

    #[test]
    fn infeasible_candidates_are_skipped_not_fatal() {
        let plan = builder(1, 2.0, 15)
            .params(CkksParams {
                depth: 8,
                ..CkksParams::toy()
            })
            .candidates(&[PafForm::MinimaxDeg27, PafForm::F1G2])
            .plan()
            .expect("f1∘g2 still fits 8 levels");
        assert_eq!(plan.chosen_form(), PafForm::F1G2);
        assert_eq!(plan.skipped_forms(), &[PafForm::MinimaxDeg27]);
        assert!(plan.report().as_str().contains("skipped"));
    }

    #[test]
    fn planning_failure_modes_are_typed() {
        let err = builder(1, 2.0, 16)
            .candidates(&[])
            .plan()
            .expect_err("empty candidate set");
        assert_eq!(err, SessionError::NoCandidates);
        let err = builder(1, 2.0, 17)
            .params(CkksParams {
                depth: 8,
                ..CkksParams::toy()
            })
            .candidates(&[PafForm::MinimaxDeg27, PafForm::F1SqG1Sq])
            .plan()
            .expect_err("nothing fits 8 levels");
        assert!(matches!(
            err,
            SessionError::NoFeasibleForm {
                tried: 2,
                max_level: 8
            }
        ));
        assert!(err.to_string().contains("8-level chain"));
    }

    #[test]
    fn compiled_session_serves_and_matches_trace() {
        let plan = builder(1, 4.0, 18)
            .objective(Objective::FixedForm(PafForm::F1G2))
            .plan()
            .expect("plannable");
        let traced = plan.traced_bootstraps();
        let trace = plan.chosen_trace().clone();
        let mut session = plan.compile().expect("toy ring compiles");
        let x = [0.4, -0.8, 0.2, -0.1];
        let enc = session.infer(&x).expect("serves");
        let plain = session.infer_plain(&x).expect("valid input");
        assert_eq!(enc.len(), plain.len());
        for (e, p) in enc.iter().zip(&plain) {
            assert!((e - p).abs() < 0.1, "{e} vs {p}");
        }
        let stats = session.last_stats().expect("stats recorded");
        assert_eq!(stats.bootstraps, traced);
        let stage_levels: Vec<usize> = trace.stages.iter().map(|s| s.levels).collect();
        assert_eq!(stats.stage_levels, stage_levels);
        // The runtime dry run replays the plan-time trace verbatim.
        let (runtime_trace, _) = session.dry_run().expect("traceable");
        assert_eq!(runtime_trace, trace);
    }

    #[test]
    fn batch_serving_matches_single_runs() {
        let plan = builder(1, 4.0, 19)
            .objective(Objective::FixedForm(PafForm::F1G2))
            .plan()
            .expect("plannable");
        let mut session = plan.compile().expect("compiles");
        session.set_batch_runner(BatchRunner::new(2));
        assert_eq!(session.threads(), 2);
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| ((i + j) as f64 - 3.0) / 3.0).collect())
            .collect();
        let run = session.infer_batch(&inputs).expect("batch serves");
        assert_eq!(run.outputs.len(), 4);
        let plain = session.infer_batch_plain(&inputs).expect("plain batch");
        for (enc, exact) in run.outputs.iter().zip(&plain.outputs) {
            for (e, p) in enc.iter().zip(exact) {
                assert!((e - p).abs() < 0.1, "{e} vs {p}");
            }
        }
        // Oversized inputs are rejected before any thread spawns.
        let err = session
            .infer_batch(&[vec![0.0; 5]])
            .expect_err("too long for a 4-wide pipeline");
        assert!(matches!(
            err,
            SessionError::Run(RunError::InputTooLong { len: 5, max: 4 })
        ));
    }

    #[test]
    fn plan_budget_caps_dry_runs_on_deep_pipelines() {
        // Six PAF slots over six candidate forms span 6^6 vectors; the
        // default budget must keep planning to a bounded number of
        // trace dry runs (uniform pass + greedy + beam).
        let plan = builder(6, 2.0, 22)
            .objective(Objective::MinBootstraps)
            .plan()
            .expect("plannable");
        assert_eq!(plan.chosen_forms().len(), 6);
        let budget = plan.budget();
        assert_eq!(budget, PlanBudget::default());
        assert!(
            plan.dry_runs_used() <= budget.max_dry_runs,
            "{} dry runs exceed the {} cap",
            plan.dry_runs_used(),
            budget.max_dry_runs
        );
        // The search actually ran past the uniform pass.
        assert!(plan.dry_runs_used() > plan.skipped_forms().len() + 6);
        assert!(plan.report().as_str().contains("dry run(s)"));
    }

    #[test]
    fn uniform_budget_reproduces_the_legacy_planner() {
        // PlanBudget::uniform() disables the vector search: only
        // uniform candidates are evaluated, and their costs are
        // byte-identical to the uniform rows of a searched plan (the
        // PR-4 single-form behaviour).
        let uniform = builder(3, 2.0, 23)
            .budget(PlanBudget::uniform())
            .plan()
            .expect("plannable");
        assert!(uniform
            .candidates()
            .iter()
            .all(|c| c.uniform_form().is_some()));
        let searched = builder(3, 2.0, 23).plan().expect("plannable");
        assert!(searched.candidates().len() >= uniform.candidates().len());
        for (u, s) in uniform
            .candidates()
            .iter()
            .zip(searched.candidates().iter())
        {
            assert_eq!(u, s, "uniform candidates lead and price identically");
        }
        // The searched plan can only match or beat the uniform one.
        assert!(searched.chosen_cost().sort_key() <= uniform.chosen_cost().sort_key());
    }

    #[test]
    fn fixed_form_costs_match_the_uniform_candidate_row() {
        let fixed = builder(3, 2.0, 24)
            .objective(Objective::FixedForm(PafForm::F1G2))
            .plan()
            .expect("plannable");
        assert_eq!(fixed.candidates().len(), 1);
        assert_eq!(fixed.chosen_form(), PafForm::F1G2);
        let searched = builder(3, 2.0, 24)
            .objective(Objective::MinBootstraps)
            .plan()
            .expect("plannable");
        let row = searched
            .candidates()
            .iter()
            .find(|c| c.uniform_form() == Some(PafForm::F1G2))
            .expect("uniform f1∘g2 evaluated");
        assert_eq!(&fixed.chosen().cost, &row.cost);
        assert_eq!(fixed.chosen().fidelity, row.fidelity);
        assert_eq!(fixed.chosen().priced_ms, row.priced_ms);
        assert_eq!(fixed.chosen().trace, row.trace);
    }

    #[test]
    fn candidate_labels_render_uniform_and_mixed() {
        let uniform = PlannedCandidate {
            forms: vec![PafForm::F1G2; 3],
            cost: VectorCost {
                bootstraps: 0,
                ct_mults: 0,
                relu_levels: 6,
            },
            trace: TraceReport {
                stages: vec![],
                final_level: 0,
            },
            fidelity: 0.5,
            priced_ms: 1.0,
        };
        assert_eq!(uniform.label(), "f1∘g2");
        assert_eq!(uniform.uniform_form(), Some(PafForm::F1G2));
        let mixed = PlannedCandidate {
            forms: vec![PafForm::MinimaxDeg27, PafForm::F1G2],
            ..uniform.clone()
        };
        assert_eq!(mixed.label(), "[α=10|f1∘g2]");
        assert_eq!(mixed.uniform_form(), None);
        let empty = PlannedCandidate {
            forms: vec![],
            ..uniform
        };
        assert_eq!(empty.label(), "(no PAF slots)");
        assert_eq!(empty.uniform_form(), None);
    }

    #[test]
    fn report_renders_the_per_slot_table() {
        let plan = builder(2, 2.0, 25).plan().expect("plannable");
        let text = plan.report().to_string();
        assert!(text.contains("per-slot"), "{text}");
        assert!(text.contains("slot"), "{text}");
        // One row per PAF slot of the chosen vector.
        let rows = plan.chosen_trace().paf_slots().len();
        assert_eq!(rows, plan.chosen_forms().len());
    }

    #[test]
    fn report_prices_every_candidate() {
        let plan = builder(1, 2.0, 20)
            .candidates(&[PafForm::F1G2, PafForm::Alpha7])
            .plan()
            .expect("plannable");
        let text = plan.report().to_string();
        assert!(text.contains("f1∘g2"));
        assert!(text.contains("α=7"));
        assert!(text.contains("est-ms"));
        assert!(text.starts_with("plan: objective min-bootstraps"));
        assert_eq!(plan.pareto_points().len(), 2);
        assert_eq!(plan.frontier_points().len(), plan.frontier_indices().len());
    }

    #[test]
    fn session_exposes_its_slot_packing_geometry() {
        let session = builder(1, 2.0, 26).plan().unwrap().compile().unwrap();
        // Toy ring: 128 slots over a dim-4 pipeline → 32 lanes.
        assert_eq!(session.slots_per_input(), 4);
        assert_eq!(session.lane_capacity(), 32);
    }

    #[test]
    fn packed_batch_matches_sequential_infer_within_noise() {
        let mut session = builder(1, 2.0, 27).plan().unwrap().compile().unwrap();
        session.set_batch_runner(BatchRunner::new(1));
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..4).map(|j| ((i * 4 + j) as f64 - 10.0) / 10.0).collect())
            .collect();
        let packed = session.infer_batch_packed(&inputs).unwrap();
        assert_eq!(packed.outputs.len(), 5);
        // 5 inputs → 8 lanes → one ciphertext, one stats record.
        assert_eq!(packed.stats.len(), 1);
        for (x, got) in inputs.iter().zip(&packed.outputs) {
            let want = session.infer(x).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 0.1, "{g} vs {w}");
            }
        }
        // The 8-lane runtime is cached; a second batch reuses it.
        let again = session.infer_batch_packed(&inputs).unwrap();
        assert_eq!(again.outputs.len(), 5);

        // Packed errors are typed: an overlong input is the client's
        // fault and must not poison the session.
        let err = session
            .infer_batch_packed(&[vec![0.0; 9], vec![0.0; 4]])
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::Pack(PackError::InputTooLong { len: 9, max: 4 })
        );
        assert!(!err.poisons_session());
        assert!(err.to_string().contains("exceeds pipeline input dim"));
    }

    #[test]
    fn packed_single_input_falls_back_to_the_unpacked_path() {
        let mut session = builder(1, 2.0, 28).plan().unwrap().compile().unwrap();
        session.set_batch_runner(BatchRunner::new(1));
        let x = vec![0.3, -0.2, 0.5, -0.4];
        let run = session
            .infer_batch_packed(std::slice::from_ref(&x))
            .unwrap();
        let want = session.infer(&x).unwrap();
        for (g, w) in run.outputs[0].iter().zip(&want) {
            assert!((g - w).abs() < 0.05, "{g} vs {w}");
        }
        let empty = session.infer_batch_packed(&[]).unwrap();
        assert!(empty.outputs.is_empty());
    }
}
