//! SMART-PAF: the paper's primary contribution.
//!
//! Reproduces the framework of *"Accurate Low-Degree Polynomial
//! Approximation of Non-Polynomial Operators for Fast Private
//! Inference in Homomorphic Encryption"* (MLSys 2024): the four
//! training techniques — Coefficient Tuning (CT), Progressive
//! Approximation (PA), Alternate Training (AT), Dynamic/Static Scaling
//! (DS/SS) — plus the Fig. 6 scheduler that composes them, the
//! replacement engine, Pareto-frontier search, and CKKS wall-clock
//! latency measurement.
//!
//! # The Session API (headline)
//!
//! The typed-state [`Session`] chain — **plan → compile → serve** — is
//! the one entry point that strings the whole deployment story
//! together: trace-priced Pareto planning over candidate PAF forms,
//! one-time key/engine setup, and encrypted serving (single inputs or
//! threaded batches). See the [`session`] module docs for the state
//! machine.
//!
//! ```
//! use smartpaf::{Objective, Session};
//! use smartpaf_ckks::CkksParams;
//! use smartpaf_nn::Linear;
//! use smartpaf_tensor::Rng64;
//!
//! let mut rng = Rng64::new(7);
//! let mut session = Session::builder(&[8])
//!     .affine(Linear::new(8, 8, &mut rng))
//!     .relu(4.0)
//!     .params(CkksParams::toy())
//!     .objective(Objective::MinBootstraps)
//!     .plan()
//!     .unwrap()
//!     .compile()
//!     .unwrap();
//! let out = session.infer(&[0.5, -0.5, 0.25, -0.25, 0.1, -0.1, 0.8, -0.8]).unwrap();
//! assert_eq!(out.len(), 8);
//! ```
//!
//! # Training example
//!
//! Training-scale (pretrains a MiniCNN, then fine-tunes through a full
//! replacement cell), so compile-checked only; `tests/e2e_smartpaf.rs`
//! runs the same flow in the test suite.
//!
//! ```no_run
//! use smartpaf::{TechniqueSet, TrainConfig, Workbench};
//! use smartpaf_datasets::{SynthDataset, SynthSpec};
//! use smartpaf_nn::mini_cnn;
//! use smartpaf_polyfit::PafForm;
//! use smartpaf_tensor::Rng64;
//!
//! let spec = SynthSpec::tiny(1);
//! let dataset = SynthDataset::new(spec);
//! let mut rng = Rng64::new(1);
//! let model = mini_cnn(spec.classes, 0.25, &mut rng);
//! let mut bench = Workbench::new(model, dataset, TrainConfig::test_scale(1), 2);
//! let result = bench.run_cell(TechniqueSet::smartpaf(), PafForm::F1G2, false);
//! assert!(result.final_acc >= 0.0);
//! ```

#![warn(missing_docs)]

mod config;
mod latency;
mod pareto;
mod pipeline;
#[cfg(test)]
mod proptests;
pub mod registry;
mod relu_reduce;
mod replace;
mod scheduler;
pub mod serve;
pub mod session;
mod trainer;

pub use config::{TechniqueSet, TrainConfig};
pub use latency::{LatencyReport, LatencyRig};
pub use pareto::{pareto_frontier, vector_pareto_frontier, ParetoPoint, VectorParetoPoint};
pub use pipeline::{ExperimentResult, Workbench};
pub use registry::{ArtifactInfo, GcPolicy, GcReport, PlanRegistry, RegistryError, FORMAT_VERSION};
pub use relu_reduce::{
    cull_least_sensitive, deepreduce_combo, relu_sensitivity, replace_survivors, ComboReport,
};
pub use replace::{
    coefficient_tune, coefficient_tune_all, collect_relu_pafs, freeze_scales, num_slots,
    profile_slot, replace_all, replace_all_with, replace_slot, scale_static_scales,
};
pub use scheduler::{rank_forms_by_dry_run, EventKind, FormCost, Scheduler, TrainEvent};
pub use serve::{registry_factory, serve_sessions, serve_sessions_packed, SessionCache};
pub use session::{
    trace_modmuls, CompiledSession, FormId, Objective, Plan, PlanBudget, PlanReport,
    PlannedCandidate, Session, SessionBuilder, SessionError, VectorCost, SECONDS_PER_MODMUL,
};
pub use trainer::{evaluate, pretrain, train_epoch};
