//! SMART-PAF: the paper's primary contribution.
//!
//! Reproduces the framework of *"Accurate Low-Degree Polynomial
//! Approximation of Non-Polynomial Operators for Fast Private
//! Inference in Homomorphic Encryption"* (MLSys 2024): the four
//! training techniques — Coefficient Tuning (CT), Progressive
//! Approximation (PA), Alternate Training (AT), Dynamic/Static Scaling
//! (DS/SS) — plus the Fig. 6 scheduler that composes them, the
//! replacement engine, Pareto-frontier search, and CKKS wall-clock
//! latency measurement.
//!
//! # Example
//!
//! Training-scale (pretrains a MiniCNN, then fine-tunes through a full
//! replacement cell), so compile-checked only; `tests/e2e_smartpaf.rs`
//! runs the same flow in the test suite.
//!
//! ```no_run
//! use smartpaf::{TechniqueSet, TrainConfig, Workbench};
//! use smartpaf_datasets::{SynthDataset, SynthSpec};
//! use smartpaf_nn::mini_cnn;
//! use smartpaf_polyfit::PafForm;
//! use smartpaf_tensor::Rng64;
//!
//! let spec = SynthSpec::tiny(1);
//! let dataset = SynthDataset::new(spec);
//! let mut rng = Rng64::new(1);
//! let model = mini_cnn(spec.classes, 0.25, &mut rng);
//! let mut bench = Workbench::new(model, dataset, TrainConfig::test_scale(1), 2);
//! let result = bench.run_cell(TechniqueSet::smartpaf(), PafForm::F1G2, false);
//! assert!(result.final_acc >= 0.0);
//! ```

mod config;
mod latency;
mod pareto;
mod pipeline;
mod relu_reduce;
mod replace;
mod scheduler;
mod trainer;

pub use config::{TechniqueSet, TrainConfig};
pub use latency::{LatencyReport, LatencyRig};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use pipeline::{ExperimentResult, Workbench};
pub use relu_reduce::{
    cull_least_sensitive, deepreduce_combo, relu_sensitivity, replace_survivors, ComboReport,
};
pub use replace::{
    coefficient_tune, coefficient_tune_all, collect_relu_pafs, freeze_scales, num_slots,
    profile_slot, replace_all, replace_all_with, replace_slot, scale_static_scales,
};
pub use scheduler::{rank_forms_by_dry_run, EventKind, FormCost, Scheduler, TrainEvent};
pub use trainer::{evaluate, pretrain, train_epoch};
