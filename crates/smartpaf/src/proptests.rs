//! Property-based tests for the Session planner: planning is
//! deterministic (chosen form *vector* included), and plan-time traces
//! match run-time measurements even for mixed-form pipelines.

use crate::session::{Objective, PlanBudget, Session, SessionBuilder};
use proptest::prelude::*;
use smartpaf_ckks::CkksParams;
use smartpaf_nn::Linear;
use smartpaf_polyfit::PafForm;
use smartpaf_tensor::Rng64;

/// `blocks` affine→ReLU blocks over a flat 4-vector on the toy ring.
fn blocks_builder(blocks: usize, scale: f64, layer_seed: u64) -> SessionBuilder {
    let mut rng = Rng64::new(layer_seed);
    let mut b = Session::builder(&[4]).params(CkksParams::toy());
    for _ in 0..blocks {
        b = b.affine(Linear::new(4, 4, &mut rng)).relu(scale);
    }
    b
}

fn objective_from(pick: usize, drop: f64) -> Objective {
    match pick % 3 {
        0 => Objective::MinBootstraps,
        1 => Objective::MinLatency { max_acc_drop: drop },
        _ => Objective::FixedForm(PafForm::F1G2),
    }
}

fn budget_from(pick: usize) -> PlanBudget {
    match pick % 3 {
        0 => PlanBudget::default(),
        1 => PlanBudget::uniform(),
        _ => PlanBudget::greedy(32),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same model / seed / objective / budget ⇒ identical chosen form
    /// vector, frontier, candidate costs, and report: planning (the
    /// greedy + beam vector search included) has no hidden
    /// nondeterminism.
    #[test]
    fn planning_is_deterministic(
        layer_seed in 0u64..500,
        session_seed in 0u64..500,
        blocks in 1usize..4,
        scale in 1.0f64..6.0,
        pick in 0usize..3,
        budget_pick in 0usize..3,
        drop in 0.0f64..1.0,
    ) {
        let objective = objective_from(pick, drop);
        let budget = budget_from(budget_pick);
        let plan_once = || {
            blocks_builder(blocks, scale, layer_seed)
                .seed(session_seed)
                .objective(objective)
                .budget(budget)
                .plan()
                .expect("the toy chain plans every objective")
        };
        let a = plan_once();
        let b = plan_once();
        prop_assert_eq!(a.chosen_forms(), b.chosen_forms());
        prop_assert_eq!(a.frontier_indices(), b.frontier_indices());
        prop_assert_eq!(a.candidates(), b.candidates());
        prop_assert_eq!(a.pareto_points(), b.pareto_points());
        prop_assert_eq!(a.dry_runs_used(), b.dry_runs_used());
        prop_assert_eq!(a.report().as_str(), b.report().as_str());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The plan's traced bootstrap count (and per-stage level schedule)
    /// equals what the compiled session measures on an encrypted run —
    /// under the searched MinBootstraps objective, whose chosen vector
    /// may well be mixed.
    #[test]
    fn traced_bootstraps_match_measured(
        layer_seed in 0u64..500,
        blocks in 1usize..4,
        scale in 1.0f64..6.0,
        x0 in -1.0f64..1.0,
    ) {
        let plan = blocks_builder(blocks, scale, layer_seed)
            .candidates(&[PafForm::F1G2, PafForm::Alpha7, PafForm::MinimaxDeg27])
            .objective(Objective::MinBootstraps)
            .plan()
            .expect("the toy chain plans min-bootstraps");
        prop_assert_eq!(plan.chosen_forms().len(), blocks);
        let traced = plan.traced_bootstraps();
        let stage_levels: Vec<usize> =
            plan.chosen_trace().stages.iter().map(|s| s.levels).collect();
        let mut session = plan.compile().expect("the toy ring compiles");
        let x = [x0, -x0, x0 / 2.0, -x0 / 2.0];
        session.infer(&x).expect("serves");
        let stats = session.last_stats().expect("stats recorded");
        prop_assert_eq!(stats.bootstraps, traced);
        prop_assert_eq!(&stats.stage_levels, &stage_levels);
    }
}
