//! Experiment configuration.

use smartpaf_nn::OptimConfig;

/// Configuration of the SMART-PAF training framework (paper §4.6 and
/// Tab. 5, plus the experiment-scale knobs our substitution needs).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs per training group (paper: E = 20).
    pub epochs_per_group: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Batches per epoch (defines the synthetic train-set size).
    pub batches_per_epoch: usize,
    /// Validation batches per accuracy measurement.
    pub val_batches: usize,
    /// Optimiser hyperparameters (paper Tab. 5).
    pub optim: OptimConfig,
    /// Overfitting trigger: train acc > val acc + this margin
    /// (paper: 10%).
    pub overfit_margin: f32,
    /// Maximum training groups per replacement step before giving up.
    pub max_groups_per_step: usize,
    /// Master seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's configuration at experiment-harness scale: E is
    /// reduced from 20 to keep CPU-only runs tractable, everything
    /// else follows Tab. 5.
    pub fn harness_scale(seed: u64) -> Self {
        TrainConfig {
            epochs_per_group: 3,
            batch_size: 16,
            batches_per_epoch: 8,
            val_batches: 8,
            optim: OptimConfig::paper_tab5(),
            overfit_margin: 0.10,
            max_groups_per_step: 3,
            seed,
        }
    }

    /// Paper-faithful group length (E = 20); slow, opt-in.
    pub fn paper_scale(seed: u64) -> Self {
        TrainConfig {
            epochs_per_group: 20,
            batch_size: 32,
            batches_per_epoch: 32,
            val_batches: 32,
            optim: OptimConfig::paper_tab5(),
            overfit_margin: 0.10,
            max_groups_per_step: 4,
            seed,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn test_scale(seed: u64) -> Self {
        TrainConfig {
            epochs_per_group: 1,
            batch_size: 8,
            batches_per_epoch: 3,
            val_batches: 3,
            optim: OptimConfig::paper_tab5(),
            overfit_margin: 0.10,
            max_groups_per_step: 2,
            seed,
        }
    }

    /// Training samples per epoch.
    pub fn samples_per_epoch(&self) -> usize {
        self.batch_size * self.batches_per_epoch
    }
}

/// Which SMART-PAF techniques an experiment enables — the rows of the
/// Tab. 3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechniqueSet {
    /// Coefficient Tuning.
    pub ct: bool,
    /// Progressive Approximation (false = direct replacement).
    pub pa: bool,
    /// Alternate Training (false = joint training).
    pub at: bool,
    /// Convert Dynamic Scaling to Static Scaling after training
    /// (the FHE-deployable configuration).
    pub static_scale: bool,
    /// Run fine-tuning at all (false = w/o fine-tune rows).
    pub fine_tune: bool,
}

impl TechniqueSet {
    /// `baseline + DS` (fine-tune, no CT/PA/AT, dynamic scale).
    pub fn baseline_ds() -> Self {
        TechniqueSet {
            ct: false,
            pa: false,
            at: false,
            static_scale: false,
            fine_tune: true,
        }
    }

    /// `baseline + SS` — the prior-work configuration (Lee et al.).
    pub fn baseline_ss() -> Self {
        TechniqueSet {
            static_scale: true,
            ..Self::baseline_ds()
        }
    }

    /// Full SMART-PAF: `CT + PA + AT + SS`.
    pub fn smartpaf() -> Self {
        TechniqueSet {
            ct: true,
            pa: true,
            at: true,
            static_scale: true,
            fine_tune: true,
        }
    }

    /// Full techniques but still dynamic scale (the grey rows of
    /// Tab. 3 before the HE-compatible SS conversion).
    pub fn smartpaf_ds() -> Self {
        TechniqueSet {
            static_scale: false,
            ..Self::smartpaf()
        }
    }

    /// Short label like `"CT+PA+AT+SS"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.ct {
            parts.push("CT");
        }
        if self.pa {
            parts.push("PA");
        }
        if self.at {
            parts.push("AT");
        }
        if !self.fine_tune {
            parts.push("w/o-finetune");
        }
        parts.push(if self.static_scale { "SS" } else { "DS" });
        format!("baseline+{}", parts.join("+"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_tab5() {
        let c = TrainConfig::paper_scale(1);
        assert_eq!(c.epochs_per_group, 20);
        assert_eq!(c.optim.paf.lr, 1e-4);
        assert_eq!(c.overfit_margin, 0.10);
    }

    #[test]
    fn technique_labels() {
        assert_eq!(TechniqueSet::baseline_ds().label(), "baseline+DS");
        assert_eq!(TechniqueSet::smartpaf().label(), "baseline+CT+PA+AT+SS");
    }

    #[test]
    fn samples_per_epoch() {
        let c = TrainConfig::test_scale(0);
        assert_eq!(c.samples_per_epoch(), 24);
    }
}
