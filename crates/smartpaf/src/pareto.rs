//! Latency-accuracy Pareto frontier (paper Fig. 1).

/// A candidate operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Latency in milliseconds (lower is better).
    pub latency_ms: f64,
    /// Accuracy in [0, 1] (higher is better).
    pub accuracy: f64,
}

/// Returns the indices of the Pareto-optimal points (no other point is
/// both faster and at least as accurate, or as fast and more
/// accurate), sorted by latency.
///
/// Tie handling: points with equal cost but strictly better accuracy
/// evict the dominated point, so at most one index survives per
/// distinct latency — important for trace-priced planning, where costs
/// are discrete (bootstrap / ct-mult counts) and exact duplicates are
/// the norm. Exact duplicates (equal cost *and* accuracy) keep the
/// first input index.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Stable sort by latency alone; dominance among ties is resolved
    // explicitly below rather than through a sort tiebreaker.
    idx.sort_by(|&a, &b| {
        points[a]
            .latency_ms
            .partial_cmp(&points[b].latency_ms)
            .expect("finite latency")
    });
    let mut frontier: Vec<usize> = Vec::new();
    for &i in &idx {
        let p = points[i];
        // Equal cost, strictly better accuracy: evict the dominated
        // point already on the frontier.
        while let Some(&last) = frontier.last() {
            if points[last].latency_ms == p.latency_ms && p.accuracy > points[last].accuracy {
                frontier.pop();
            } else {
                break;
            }
        }
        let dominated = frontier
            .last()
            .is_some_and(|&last| points[last].accuracy >= p.accuracy);
        if !dominated {
            frontier.push(i);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(latency_ms: f64, accuracy: f64) -> ParetoPoint {
        ParetoPoint {
            latency_ms,
            accuracy,
        }
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![p(1.0, 0.5), p(2.0, 0.4), p(3.0, 0.9)];
        // (2.0, 0.4) is dominated by (1.0, 0.5).
        assert_eq!(pareto_frontier(&pts), vec![0, 2]);
    }

    #[test]
    fn all_on_frontier_when_tradeoff_monotone() {
        let pts = vec![p(1.0, 0.3), p(2.0, 0.5), p(3.0, 0.7)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_frontier(&[p(5.0, 0.1)]), vec![0]);
    }

    #[test]
    fn equal_latency_keeps_more_accurate() {
        let pts = vec![p(1.0, 0.4), p(1.0, 0.6)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn duplicate_cost_evicts_dominated_point() {
        // Three candidates at identical cost: only the most accurate
        // survives, wherever it sits in the input.
        let pts = vec![p(2.0, 0.7), p(2.0, 0.9), p(2.0, 0.8)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn exact_duplicates_keep_first_index() {
        let pts = vec![p(1.0, 0.5), p(1.0, 0.5)];
        assert_eq!(pareto_frontier(&pts), vec![0]);
    }

    #[test]
    fn duplicate_costs_across_levels() {
        // Trace-priced costs are discrete (bootstraps, ct-mults), so
        // duplicate-cost inputs are the norm: each distinct cost keeps
        // exactly its best point, and equal-accuracy-but-slower points
        // stay dominated.
        let pts = vec![
            p(1.0, 0.2),
            p(1.0, 0.4), // same cost as [0], strictly better: evicts it
            p(2.0, 0.3), // dominated by (1.0, 0.4)
            p(2.0, 0.6),
            p(3.0, 0.6), // equal accuracy, slower: dominated
        ];
        assert_eq!(pareto_frontier(&pts), vec![1, 3]);
    }
}
