//! Latency-accuracy Pareto frontier (paper Fig. 1), plus the
//! three-axis frontier over per-slot *form vectors* the Session
//! planner searches (traced bootstraps × exact ct-mults × worst-slot
//! sign error).

use smartpaf_polyfit::PafForm;

/// A candidate operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Latency in milliseconds (lower is better).
    pub latency_ms: f64,
    /// Accuracy in [0, 1] (higher is better).
    pub accuracy: f64,
}

/// Returns the indices of the Pareto-optimal points (no other point is
/// both faster and at least as accurate, or as fast and more
/// accurate), sorted by latency.
///
/// Tie handling: points with equal cost but strictly better accuracy
/// evict the dominated point, so at most one index survives per
/// distinct latency — important for trace-priced planning, where costs
/// are discrete (bootstrap / ct-mult counts) and exact duplicates are
/// the norm. Exact duplicates (equal cost *and* accuracy) keep the
/// first input index.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Stable sort by latency alone; dominance among ties is resolved
    // explicitly below rather than through a sort tiebreaker.
    idx.sort_by(|&a, &b| {
        points[a]
            .latency_ms
            .partial_cmp(&points[b].latency_ms)
            .expect("finite latency")
    });
    let mut frontier: Vec<usize> = Vec::new();
    for &i in &idx {
        let p = points[i];
        // Equal cost, strictly better accuracy: evict the dominated
        // point already on the frontier.
        while let Some(&last) = frontier.last() {
            if points[last].latency_ms == p.latency_ms && p.accuracy > points[last].accuracy {
                frontier.pop();
            } else {
                break;
            }
        }
        let dominated = frontier
            .last()
            .is_some_and(|&last| points[last].accuracy >= p.accuracy);
        if !dominated {
            frontier.push(i);
        }
    }
    frontier
}

/// A planned form-vector operating point: the per-slot PAF assignment
/// plus the three traced cost axes the planner's frontier dominates
/// over. All three axes are minimised.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorParetoPoint {
    /// One PAF form per slot, in stage order (the form vector).
    pub forms: Vec<PafForm>,
    /// Traced bootstraps of one inference with this vector.
    pub bootstraps: usize,
    /// Exact ciphertext-ciphertext multiplications of one inference.
    pub ct_mults: usize,
    /// Worst-slot sign-approximation error `max_slot max|paf − sign|`
    /// on the accurate range (lower is more faithful).
    pub sign_error: f64,
}

impl VectorParetoPoint {
    fn dominated_by(&self, other: &VectorParetoPoint) -> bool {
        other.bootstraps <= self.bootstraps
            && other.ct_mults <= self.ct_mults
            && other.sign_error <= self.sign_error
            && (other.bootstraps < self.bootstraps
                || other.ct_mults < self.ct_mults
                || other.sign_error < self.sign_error)
    }
}

/// Returns the indices of the Pareto-optimal form-vector points under
/// three-axis minimisation (no other point is at least as good on all
/// of traced bootstraps, exact ct-mults, and worst-slot sign error,
/// and strictly better on one), sorted by
/// `(bootstraps, ct_mults, sign_error)`.
///
/// Duplicate handling — both are the norm in a budgeted beam search,
/// where the same vector can be re-proposed from several parents and
/// discrete traced costs collide constantly:
///
/// - **identical form vectors** are deduplicated *before* frontier
///   construction (only the first occurrence can appear);
/// - points with **identical cost triples** but different vectors keep
///   only the first input index, mirroring the exact-duplicate rule of
///   [`pareto_frontier`].
pub fn vector_pareto_frontier(points: &[VectorParetoPoint]) -> Vec<usize> {
    // Dedupe identical form vectors (first occurrence wins).
    let mut unique: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if !unique.iter().any(|&j| points[j].forms == p.forms) {
            unique.push(i);
        }
    }
    let mut frontier: Vec<usize> = Vec::new();
    'candidates: for &i in &unique {
        for &j in &unique {
            if j != i && points[i].dominated_by(&points[j]) {
                continue 'candidates;
            }
            // Identical cost triple: keep the earliest index only.
            if j < i
                && points[j].bootstraps == points[i].bootstraps
                && points[j].ct_mults == points[i].ct_mults
                && points[j].sign_error == points[i].sign_error
            {
                continue 'candidates;
            }
        }
        frontier.push(i);
    }
    frontier.sort_by(|&a, &b| {
        let ka = (points[a].bootstraps, points[a].ct_mults);
        let kb = (points[b].bootstraps, points[b].ct_mults);
        ka.cmp(&kb).then_with(|| {
            points[a]
                .sign_error
                .partial_cmp(&points[b].sign_error)
                .expect("finite sign error")
                .then(a.cmp(&b))
        })
    });
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(latency_ms: f64, accuracy: f64) -> ParetoPoint {
        ParetoPoint {
            latency_ms,
            accuracy,
        }
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![p(1.0, 0.5), p(2.0, 0.4), p(3.0, 0.9)];
        // (2.0, 0.4) is dominated by (1.0, 0.5).
        assert_eq!(pareto_frontier(&pts), vec![0, 2]);
    }

    #[test]
    fn all_on_frontier_when_tradeoff_monotone() {
        let pts = vec![p(1.0, 0.3), p(2.0, 0.5), p(3.0, 0.7)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_frontier(&[p(5.0, 0.1)]), vec![0]);
    }

    #[test]
    fn equal_latency_keeps_more_accurate() {
        let pts = vec![p(1.0, 0.4), p(1.0, 0.6)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn duplicate_cost_evicts_dominated_point() {
        // Three candidates at identical cost: only the most accurate
        // survives, wherever it sits in the input.
        let pts = vec![p(2.0, 0.7), p(2.0, 0.9), p(2.0, 0.8)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn exact_duplicates_keep_first_index() {
        let pts = vec![p(1.0, 0.5), p(1.0, 0.5)];
        assert_eq!(pareto_frontier(&pts), vec![0]);
    }

    #[test]
    fn duplicate_costs_across_levels() {
        // Trace-priced costs are discrete (bootstraps, ct-mults), so
        // duplicate-cost inputs are the norm: each distinct cost keeps
        // exactly its best point, and equal-accuracy-but-slower points
        // stay dominated.
        let pts = vec![
            p(1.0, 0.2),
            p(1.0, 0.4), // same cost as [0], strictly better: evicts it
            p(2.0, 0.3), // dominated by (1.0, 0.4)
            p(2.0, 0.6),
            p(3.0, 0.6), // equal accuracy, slower: dominated
        ];
        assert_eq!(pareto_frontier(&pts), vec![1, 3]);
    }

    fn v(
        forms: &[PafForm],
        bootstraps: usize,
        ct_mults: usize,
        sign_error: f64,
    ) -> VectorParetoPoint {
        VectorParetoPoint {
            forms: forms.to_vec(),
            bootstraps,
            ct_mults,
            sign_error,
        }
    }

    #[test]
    fn vector_frontier_excludes_dominated_vectors() {
        use PafForm::{Alpha7, MinimaxDeg27, F1G2};
        let pts = vec![
            v(&[F1G2, F1G2], 5, 28, 0.8),
            v(&[MinimaxDeg27, F1G2], 4, 46, 0.8), // dominates [2] on boots
            v(&[Alpha7, Alpha7], 5, 40, 0.8),     // dominated by [0] and [1]
            v(&[MinimaxDeg27, MinimaxDeg27], 4, 100, 0.02), // buys fidelity
        ];
        assert_eq!(vector_pareto_frontier(&pts), vec![1, 3, 0]);
    }

    #[test]
    fn vector_frontier_dedupes_identical_form_vectors() {
        use PafForm::{Alpha7, F1G2};
        // The same vector re-proposed by a beam search must enter the
        // frontier at most once, keeping the first occurrence even
        // when a later duplicate claims a different (stale) cost.
        let pts = vec![
            v(&[F1G2, Alpha7], 3, 20, 0.5),
            v(&[F1G2, Alpha7], 2, 10, 0.1), // duplicate vector: ignored
            v(&[Alpha7, F1G2], 3, 20, 0.4), // equal cost, better error
        ];
        // [1] never enters (duplicate vector), and without it [2]
        // dominates [0] on the error axis at equal discrete cost.
        assert_eq!(vector_pareto_frontier(&pts), vec![2]);
    }

    #[test]
    fn vector_frontier_duplicate_cost_triples_keep_first_index() {
        use PafForm::{Alpha7, F1G2};
        // Distinct vectors, identical discrete costs: exactly one
        // survives (the first), mirroring the 2D exact-duplicate rule.
        let pts = vec![
            v(&[F1G2, Alpha7], 4, 30, 0.5),
            v(&[Alpha7, F1G2], 4, 30, 0.5),
            v(&[F1G2, F1G2], 5, 28, 0.8), // incomparable: stays
        ];
        assert_eq!(vector_pareto_frontier(&pts), vec![0, 2]);
    }

    #[test]
    fn vector_frontier_sorts_by_cost_then_error() {
        use PafForm::{Alpha7, F1G2, F2G2};
        let pts = vec![
            v(&[Alpha7], 2, 11, 0.03),
            v(&[F1G2], 1, 5, 0.76),
            v(&[F2G2], 2, 9, 0.2),
        ];
        // All incomparable; sorted by (bootstraps, ct_mults, error).
        assert_eq!(vector_pareto_frontier(&pts), vec![1, 2, 0]);
    }

    #[test]
    fn vector_frontier_empty_and_single() {
        assert!(vector_pareto_frontier(&[]).is_empty());
        let single = vec![v(&[PafForm::F1G2], 1, 5, 0.7)];
        assert_eq!(vector_pareto_frontier(&single), vec![0]);
    }
}
