//! Latency-accuracy Pareto frontier (paper Fig. 1).

/// A candidate operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Latency in milliseconds (lower is better).
    pub latency_ms: f64,
    /// Accuracy in [0, 1] (higher is better).
    pub accuracy: f64,
}

/// Returns the indices of the Pareto-optimal points (no other point is
/// both faster and at least as accurate, or as fast and more
/// accurate), sorted by latency.
pub fn pareto_frontier(points: &[ParetoPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .latency_ms
            .partial_cmp(&points[b].latency_ms)
            .expect("finite latency")
            .then(
                points[b]
                    .accuracy
                    .partial_cmp(&points[a].accuracy)
                    .expect("finite accuracy"),
            )
    });
    let mut frontier = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for &i in &idx {
        if points[i].accuracy > best_acc {
            frontier.push(i);
            best_acc = points[i].accuracy;
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(latency_ms: f64, accuracy: f64) -> ParetoPoint {
        ParetoPoint {
            latency_ms,
            accuracy,
        }
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![p(1.0, 0.5), p(2.0, 0.4), p(3.0, 0.9)];
        // (2.0, 0.4) is dominated by (1.0, 0.5).
        assert_eq!(pareto_frontier(&pts), vec![0, 2]);
    }

    #[test]
    fn all_on_frontier_when_tradeoff_monotone() {
        let pts = vec![p(1.0, 0.3), p(2.0, 0.5), p(3.0, 0.7)];
        assert_eq!(pareto_frontier(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_frontier(&[p(5.0, 0.1)]), vec![0]);
    }

    #[test]
    fn equal_latency_keeps_more_accurate() {
        let pts = vec![p(1.0, 0.4), p(1.0, 0.6)];
        assert_eq!(pareto_frontier(&pts), vec![1]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_frontier(&[]).is_empty());
    }
}
