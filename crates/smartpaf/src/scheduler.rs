//! The SMART-PAF training scheduler (paper Fig. 6).
//!
//! One *step* per non-polynomial slot, executed in inference order
//! (Progressive Approximation). Within a step, *training groups* of E
//! epochs run with SWA; the framework detects accuracy improvement,
//! responds to overfitting, toggles Alternate Training, and keeps the
//! best model seen (the "pick the branch providing higher accuracy"
//! box).
//!
//! Overfitting response: the paper inserts Dropout; our layer graphs
//! have no pre-placed dropout slots, so the scheduler boosts weight
//! decay instead — same regularising role, recorded in the event log.

use crate::config::{TechniqueSet, TrainConfig};
use crate::replace::{freeze_scales, num_slots, replace_all_with, replace_slot};
use crate::trainer::{evaluate, train_epoch};
use smartpaf_datasets::SynthDataset;
use smartpaf_heinfer::{PipelineBuilder, RunError};
use smartpaf_nn::{Adam, Model, Swa};
use smartpaf_polyfit::{CompositePaf, PafForm};
use smartpaf_tensor::Tensor;

/// What happened at a point of the training timeline (Fig. 9 markers).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A slot was replaced by a PAF.
    Replacement(usize),
    /// An epoch finished (the curve itself).
    Epoch,
    /// SWA was applied at a group boundary.
    SwaApplied,
    /// AT switched to training PAF coefficients.
    AtTrainPaf,
    /// AT switched to training the other layers.
    AtTrainOther,
    /// Overfitting detected; regularisation boosted.
    OverfitDetected,
    /// A replacement step finished.
    StepEnd,
}

/// One timeline entry.
#[derive(Debug, Clone)]
pub struct TrainEvent {
    /// Global epoch counter.
    pub epoch: usize,
    /// Validation accuracy at this point.
    pub val_acc: f32,
    /// Event kind.
    pub kind: EventKind,
}

/// Snapshot of all parameter values.
fn snapshot(model: &mut Model) -> Vec<Tensor> {
    model.params_mut().iter().map(|p| p.value.clone()).collect()
}

/// Restores a parameter snapshot.
///
/// # Panics
///
/// Panics if the parameter list changed shape since the snapshot.
fn restore(model: &mut Model, snap: &[Tensor]) {
    let mut params = model.params_mut();
    assert_eq!(params.len(), snap.len(), "parameter list changed");
    for (p, s) in params.iter_mut().zip(snap) {
        p.value = s.clone();
    }
}

/// Dry-run cost of deploying one PAF form under a given modulus chain,
/// from the arithmetic-free trace backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormCost {
    /// The PAF form.
    pub form: PafForm,
    /// Levels one PAF-ReLU consumes (sign depth + product).
    pub relu_levels: usize,
    /// Exact ciphertext-ciphertext multiplications of one PAF-ReLU
    /// (even-power-ladder schedule + the ReLU product).
    pub ct_mults: usize,
    /// Bootstraps one PAF-ReLU forces on a chain of `max_level`
    /// levels (0 when it fits leveled).
    pub bootstraps: usize,
}

impl serde::Serialize for FormCost {
    fn serialize(&self) -> serde::Value {
        serde::Value::object([
            ("form", serde::Serialize::serialize(&self.form)),
            (
                "relu_levels",
                serde::Serialize::serialize(&self.relu_levels),
            ),
            ("ct_mults", serde::Serialize::serialize(&self.ct_mults)),
            ("bootstraps", serde::Serialize::serialize(&self.bootstraps)),
        ])
    }
}

impl serde::Deserialize for FormCost {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(FormCost {
            form: serde::Deserialize::deserialize(value.req("form")?)?,
            relu_levels: serde::Deserialize::deserialize(value.req("relu_levels")?)?,
            ct_mults: serde::Deserialize::deserialize(value.req("ct_mults")?)?,
            bootstraps: serde::Deserialize::deserialize(value.req("bootstraps")?)?,
        })
    }
}

impl FormCost {
    /// Builds the cost row of `form` from a trace dry run of a
    /// pipeline using `paf` — the shared constructor behind
    /// [`rank_forms_by_dry_run`] (canonical single-ReLU probe) and the
    /// Session planner (the caller's actual pipeline).
    pub fn from_trace(
        form: PafForm,
        paf: &CompositePaf,
        report: &smartpaf_heinfer::TraceReport,
    ) -> Self {
        FormCost {
            form,
            relu_levels: paf.mult_depth() + 1,
            ct_mults: report.total_ct_mults(),
            bootstraps: report.total_bootstraps(),
        }
    }

    /// The planner's lexicographic sort key: fewest forced bootstraps,
    /// then fewest exact ciphertext multiplications, then shallowest
    /// ReLU — traced deployment cost, never depth alone.
    pub fn sort_key(&self) -> (usize, usize, usize) {
        (self.bootstraps, self.ct_mults, self.relu_levels)
    }
}

/// Ranks PAF forms by their dry-run deployment cost on a modulus chain
/// of `max_level` rescale levels: fewest forced bootstraps first, then
/// fewest exact ciphertext multiplications — the instant cost oracle a
/// replacement schedule consults before committing to training a form.
///
/// Every query is an arithmetic-free [`smartpaf_heinfer::TraceBackend`]
/// run (microseconds), so this can sit inside a search loop. Errors
/// surface when a form's atomic depth exceeds the whole chain
/// ([`RunError::AtomicDepthExceeded`]) — no bootstrap schedule can run
/// it at those parameters.
pub fn rank_forms_by_dry_run(
    forms: &[PafForm],
    max_level: usize,
) -> Result<Vec<FormCost>, RunError> {
    let mut costs = Vec::with_capacity(forms.len());
    for &form in forms {
        let paf = CompositePaf::from_form(form);
        let pipe = PipelineBuilder::new(&[4])
            .paf_relu(&paf, 1.0)
            .try_compile()?;
        let (report, _) = pipe.dry_run(max_level, true)?;
        costs.push(FormCost::from_trace(form, &paf, &report));
    }
    costs.sort_by_key(FormCost::sort_key);
    Ok(costs)
}

/// The Fig. 6 scheduler.
pub struct Scheduler {
    config: TrainConfig,
    techniques: TechniqueSet,
    events: Vec<TrainEvent>,
    epoch: usize,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: TrainConfig, techniques: TechniqueSet) -> Self {
        Scheduler {
            config,
            techniques,
            events: Vec::new(),
            epoch: 0,
        }
    }

    /// The recorded timeline (for Fig. 9).
    pub fn events(&self) -> &[TrainEvent] {
        &self.events
    }

    fn record(&mut self, val_acc: f32, kind: EventKind) {
        self.events.push(TrainEvent {
            epoch: self.epoch,
            val_acc,
            kind,
        });
    }

    /// Runs the full replacement + fine-tuning schedule. `pafs` holds
    /// one PAF per slot (post-CT when CT is enabled; copies of the
    /// base PAF otherwise). Returns the final validation accuracy
    /// (after DS→SS conversion when the technique set asks for it).
    pub fn run(
        &mut self,
        model: &mut Model,
        dataset: &SynthDataset,
        pafs: &[CompositePaf],
        relu_only: bool,
    ) -> f32 {
        let total = num_slots(model);
        assert!(!pafs.is_empty(), "no PAFs supplied");
        if self.techniques.pa {
            // Progressive: replace one slot per step, fine-tune after
            // each replacement.
            for pos in 0..total {
                if relu_only && !self.is_relu_slot(model, pos) {
                    continue;
                }
                replace_slot(model, pos, &pafs[pos % pafs.len()]);
                let acc = evaluate(model, dataset, &self.config);
                self.record(acc, EventKind::Replacement(pos));
                if self.techniques.fine_tune {
                    self.run_step(model, dataset);
                }
            }
        } else {
            // Direct replacement of everything at once.
            replace_all_with(model, pafs, relu_only);
            let acc = evaluate(model, dataset, &self.config);
            self.record(acc, EventKind::Replacement(usize::MAX));
            if self.techniques.fine_tune {
                self.run_step(model, dataset);
            }
        }
        if self.techniques.static_scale {
            freeze_scales(model);
        }
        evaluate(model, dataset, &self.config)
    }

    fn is_relu_slot(&self, model: &mut Model, pos: usize) -> bool {
        let mut i = 0;
        let mut is_relu = false;
        model.visit_slots(&mut |s| {
            if i == pos {
                is_relu = matches!(s, smartpaf_nn::SlotRef::Relu(_));
            }
            i += 1;
        });
        is_relu
    }

    /// One replacement step: training groups until no improvement.
    fn run_step(&mut self, model: &mut Model, dataset: &SynthDataset) {
        let mut best_acc = evaluate(model, dataset, &self.config);
        let mut best_params = snapshot(model);
        let mut optim = self.config.optim;
        let mut at_phase_paf = true; // AT starts by training PAFs
        let mut opt = Adam::new(if self.techniques.at {
            self.record(best_acc, EventKind::AtTrainPaf);
            optim.freeze_other()
        } else {
            optim
        });

        for _group in 0..self.config.max_groups_per_step {
            let mut swa = Swa::new();
            let mut group_best = f32::NEG_INFINITY;
            let mut last_train_acc = 0.0;
            for e in 0..self.config.epochs_per_group {
                let (_, train_acc) =
                    train_epoch(model, dataset, &mut opt, &self.config, self.epoch + e);
                last_train_acc = train_acc;
                swa.record(&model.params_mut());
                let val = evaluate(model, dataset, &self.config);
                self.epoch += 1;
                self.record(val, EventKind::Epoch);
                if val > group_best {
                    group_best = val;
                }
                if val > best_acc {
                    best_acc = val;
                    best_params = snapshot(model);
                }
            }
            // Apply SWA; keep it only if it helps.
            let pre_swa = snapshot(model);
            swa.apply(&mut model.params_mut());
            let swa_acc = evaluate(model, dataset, &self.config);
            if swa_acc >= group_best {
                self.record(swa_acc, EventKind::SwaApplied);
                if swa_acc > best_acc {
                    best_acc = swa_acc;
                    best_params = snapshot(model);
                }
                group_best = swa_acc;
            } else {
                restore(model, &pre_swa);
            }

            let improved = group_best >= best_acc;
            let val_now = evaluate(model, dataset, &self.config);
            if last_train_acc > val_now + self.config.overfit_margin {
                // Overfitting: boost regularisation (dropout stand-in).
                optim.paf.weight_decay *= 2.0;
                optim.other.weight_decay *= 2.0;
                self.record(val_now, EventKind::OverfitDetected);
            } else if !improved && self.techniques.at {
                // Swap AT phase.
                at_phase_paf = !at_phase_paf;
                let cfg = if at_phase_paf {
                    self.record(val_now, EventKind::AtTrainPaf);
                    optim.freeze_other()
                } else {
                    self.record(val_now, EventKind::AtTrainOther);
                    optim.freeze_paf()
                };
                opt = Adam::new(cfg);
                continue;
            } else if !improved {
                break;
            }
            opt.set_config(if self.techniques.at {
                if at_phase_paf {
                    optim.freeze_other()
                } else {
                    optim.freeze_paf()
                }
            } else {
                optim
            });
        }
        // Keep the best model seen during this step.
        restore(model, &best_params);
        let final_acc = evaluate(model, dataset, &self.config);
        self.record(final_acc, EventKind::StepEnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::pretrain;
    use smartpaf_datasets::SynthSpec;
    use smartpaf_nn::mini_cnn;
    use smartpaf_polyfit::PafForm;
    use smartpaf_tensor::Rng64;

    fn setup(seed: u64) -> (Model, SynthDataset, TrainConfig) {
        let spec = SynthSpec::tiny(seed);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig::test_scale(seed);
        let mut rng = Rng64::new(seed);
        let mut model = mini_cnn(spec.classes, 0.25, &mut rng);
        pretrain(&mut model, &dataset, &config, 4);
        (model, dataset, config)
    }

    #[test]
    fn dry_run_ranking_orders_by_cost() {
        // On a 12-level chain every form's ReLU fits leveled, so the
        // ranking reduces to exact ct-mult order: f1∘g2 cheapest, the
        // 27-degree comparator most expensive.
        let ranked = rank_forms_by_dry_run(&PafForm::all(), 12).expect("all fit");
        assert_eq!(ranked.len(), 6);
        assert_eq!(ranked[0].form, PafForm::F1G2);
        assert_eq!(ranked[5].form, PafForm::MinimaxDeg27);
        assert!(ranked.iter().all(|c| c.bootstraps == 0));
        assert!(ranked.windows(2).all(|w| w[0].ct_mults <= w[1].ct_mults));
        // Each cost is the exact ladder count + the ReLU product.
        for c in &ranked {
            let paf = CompositePaf::from_form(c.form);
            assert_eq!(c.ct_mults, paf.exact_ct_mult_count() + 1);
            assert_eq!(c.relu_levels, paf.mult_depth() + 1);
        }
    }

    #[test]
    fn dry_run_ranking_rejects_impossible_chains() {
        // A 5-level chain cannot even run f1∘g2's depth-6 ReLU.
        let err = rank_forms_by_dry_run(&[PafForm::F1G2], 5).expect_err("too shallow");
        assert!(matches!(
            err,
            smartpaf_heinfer::RunError::AtomicDepthExceeded { .. }
        ));
    }

    #[test]
    fn scheduler_runs_direct_replacement() {
        let (mut model, dataset, config) = setup(31);
        let mut sched = Scheduler::new(config, TechniqueSet::baseline_ds());
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let acc = sched.run(&mut model, &dataset, &[paf], false);
        assert!((0.0..=1.0).contains(&acc));
        assert!(sched
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Replacement(_))));
        assert!(sched
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::StepEnd)));
    }

    #[test]
    fn pa_produces_one_replacement_per_slot() {
        let (mut model, dataset, config) = setup(32);
        let mut sched = Scheduler::new(config, TechniqueSet::smartpaf_ds());
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let _ = sched.run(&mut model, &dataset, &[paf], false);
        let replacements = sched
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Replacement(_)))
            .count();
        assert_eq!(replacements, 8); // 6 ReLU + 2 MaxPool in mini_cnn
    }

    #[test]
    fn at_events_logged_when_enabled() {
        let (mut model, dataset, config) = setup(33);
        let mut sched = Scheduler::new(
            config,
            TechniqueSet {
                at: true,
                ..TechniqueSet::baseline_ds()
            },
        );
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let _ = sched.run(&mut model, &dataset, &[paf], false);
        assert!(sched
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::AtTrainPaf)));
    }

    #[test]
    fn static_scale_freezes_model() {
        let (mut model, dataset, config) = setup(34);
        let mut sched = Scheduler::new(config, TechniqueSet::smartpaf());
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let _ = sched.run(&mut model, &dataset, &[paf], false);
        model.visit_slots(&mut |s| {
            if let smartpaf_nn::SlotRef::Relu(r) = s {
                if let Some(p) = r.paf_mut() {
                    assert!(matches!(p.scale_mode, smartpaf_nn::ScaleMode::Static(_)));
                }
            }
        });
    }

    #[test]
    fn no_finetune_skips_training_epochs() {
        let (mut model, dataset, config) = setup(35);
        let mut sched = Scheduler::new(
            config,
            TechniqueSet {
                fine_tune: false,
                ..TechniqueSet::baseline_ds()
            },
        );
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let _ = sched.run(&mut model, &dataset, &[paf], false);
        assert!(!sched.events().iter().any(|e| e.kind == EventKind::Epoch));
    }
}
