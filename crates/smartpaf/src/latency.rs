//! Wall-clock PAF latency under CKKS (the latency axis of Fig. 1 and
//! the latency columns of Tab. 4).

use smartpaf_ckks::{CkksParams, Evaluator, KeyChain, PafEvaluator};
use smartpaf_heinfer::{HePipeline, RunError, RunStats, TraceReport};
use smartpaf_polyfit::{CompositePaf, OddPowerSchedule, PafForm};
use smartpaf_tensor::Rng64;
use std::time::{Duration, Instant};

/// A latency measurement for one PAF form.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// The measured PAF form.
    pub form: PafForm,
    /// Median wall-clock time of one PAF-ReLU evaluation over a full
    /// ciphertext (all slots in parallel).
    pub relu_latency: Duration,
    /// Median wall-clock time of the same batch of slots through the
    /// plaintext evaluation engine (`CompositeEval::relu_slice`) — the
    /// denominator of the encrypted-vs-plain slowdown the paper's
    /// latency discussion is about.
    pub plain_latency: Duration,
    /// CKKS multiplication depth consumed.
    pub depth: usize,
    /// Ciphertext-ciphertext multiplication count (coarse analytic
    /// model, `CompositePaf::ct_mult_count` + the ReLU product).
    pub ct_mults: usize,
    /// Exact ciphertext multiplication count of the even-power-ladder
    /// schedule (`OddPowerSchedule::exact_ct_mults` + the ReLU
    /// product).
    pub ct_mults_exact: usize,
}

impl LatencyReport {
    /// Encrypted-over-plain slowdown factor (∞-safe: returns
    /// `f64::INFINITY` when the plain batch was too fast to resolve).
    pub fn slowdown(&self) -> f64 {
        let plain = self.plain_latency.as_secs_f64();
        if plain == 0.0 {
            f64::INFINITY
        } else {
            self.relu_latency.as_secs_f64() / plain
        }
    }
}

/// A reusable latency measurement rig (context + keys are expensive to
/// build, so share one across forms).
pub struct LatencyRig {
    paf_eval: PafEvaluator,
    rng: Rng64,
}

impl LatencyRig {
    /// Builds a rig with the given CKKS parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameter depth cannot fit the deepest PAF
    /// (depth 10 sign + 1 ReLU multiply).
    pub fn new(params: &CkksParams, seed: u64) -> Self {
        assert!(
            params.depth >= 11,
            "need depth >= 11 for the 27-degree comparator"
        );
        let ctx = params.build();
        let mut rng = Rng64::new(seed);
        let keys = KeyChain::generate(&ctx, &mut rng);
        LatencyRig {
            paf_eval: PafEvaluator::new(Evaluator::new(&keys)),
            rng,
        }
    }

    /// Wraps an existing evaluator (shared context + keys) instead of
    /// building a fresh one — how a compiled Session hands out a
    /// measurement rig without paying key generation twice. Unlike
    /// [`LatencyRig::new`] no depth floor is asserted;
    /// [`LatencyRig::measure_relu`] on a form deeper than the chain
    /// will panic inside the evaluator, so only measure forms the
    /// session planned as feasible.
    pub fn from_paf_evaluator(paf_eval: PafEvaluator, seed: u64) -> Self {
        LatencyRig {
            paf_eval,
            rng: Rng64::new(seed),
        }
    }

    /// Access to the underlying PAF evaluator.
    pub fn paf_evaluator(&self) -> &PafEvaluator {
        &self.paf_eval
    }

    /// Instant dry-run cost oracle: traces a compiled pipeline over
    /// this rig's modulus chain without any ciphertext arithmetic,
    /// returning per-stage levels, bootstraps, and exact ct-mult
    /// counts. Microseconds per query, so schedulers can call it per
    /// candidate configuration instead of paying for
    /// [`HePipeline::eval_encrypted`].
    pub fn dry_run(
        &self,
        pipe: &HePipeline,
        allow_bootstrap: bool,
    ) -> Result<(TraceReport, RunStats), RunError> {
        let max_level = self.paf_eval.evaluator().context().max_level();
        pipe.dry_run(max_level, allow_bootstrap)
    }

    /// Measures the median PAF-ReLU latency of `form` over `iters`
    /// runs (first run is a warm-up generating the per-level relin
    /// keys, mirroring a deployment where keys exist up front).
    pub fn measure_relu(&mut self, form: PafForm, iters: usize) -> LatencyReport {
        let paf = CompositePaf::from_form(form);
        let slots = self.paf_eval.evaluator().context().slots();
        let values: Vec<f64> = (0..slots.min(64))
            .map(|i| (i as f64 / 32.0) - 1.0)
            .collect();
        let ct = self
            .paf_eval
            .evaluator()
            .encrypt_values(&values, &mut self.rng);
        // Warm-up (generates relin keys for every level this PAF uses).
        let _ = self.paf_eval.relu(&ct, &paf);
        let mut times: Vec<Duration> = (0..iters.max(1))
            .map(|_| {
                let t0 = Instant::now();
                let out = self.paf_eval.relu(&ct, &paf);
                let dt = t0.elapsed();
                std::hint::black_box(out);
                dt
            })
            .collect();
        times.sort();
        // Plaintext twin: the same slot batch through the prepared
        // evaluation engine.
        let eng = paf.prepare();
        let mut plain_out = vec![0.0; values.len()];
        eng.relu_slice(&values, &mut plain_out); // warm-up
        let mut plain_times: Vec<Duration> = (0..iters.max(1))
            .map(|_| {
                let t0 = Instant::now();
                eng.relu_slice(&values, &mut plain_out);
                let dt = t0.elapsed();
                std::hint::black_box(&plain_out);
                dt
            })
            .collect();
        plain_times.sort();
        let exact: usize = paf
            .stages()
            .iter()
            .map(|p| OddPowerSchedule::new(p).exact_ct_mults())
            .sum();
        LatencyReport {
            form,
            relu_latency: times[times.len() / 2],
            plain_latency: plain_times[plain_times.len() / 2],
            depth: PafEvaluator::relu_depth(&paf),
            ct_mults: paf.ct_mult_count() + 1,
            ct_mults_exact: exact + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> LatencyRig {
        // Toy ring keeps unit tests quick while exercising the full path.
        LatencyRig::new(&CkksParams::toy(), 7)
    }

    #[test]
    fn latency_increases_with_depth() {
        let mut rig = rig();
        let cheap = rig.measure_relu(PafForm::F1G2, 3);
        let rich = rig.measure_relu(PafForm::MinimaxDeg27, 3);
        assert!(
            rich.relu_latency > cheap.relu_latency,
            "27-degree {:?} should be slower than f1g2 {:?}",
            rich.relu_latency,
            cheap.relu_latency
        );
        assert_eq!(cheap.depth, 6);
        assert_eq!(rich.depth, 11);
    }

    #[test]
    fn rig_from_existing_evaluator_measures() {
        let base = rig();
        let mut shared = LatencyRig::from_paf_evaluator(base.paf_evaluator().clone(), 3);
        let r = shared.measure_relu(PafForm::F1G2, 2);
        assert_eq!(r.form, PafForm::F1G2);
        assert!(r.relu_latency.as_nanos() > 0);
    }

    #[test]
    fn report_fields_consistent() {
        let mut rig = rig();
        let r = rig.measure_relu(PafForm::Alpha7, 2);
        assert_eq!(r.form, PafForm::Alpha7);
        assert!(r.relu_latency.as_nanos() > 0);
        assert!(r.ct_mults >= r.depth - 1);
        // The exact ladder schedule can only cost more than the coarse
        // model (it charges the per-term bit products too).
        assert!(r.ct_mults_exact >= r.ct_mults);
    }

    #[test]
    fn dry_run_matches_measured_encrypted_stats() {
        use smartpaf_heinfer::PipelineBuilder;
        use smartpaf_nn::Linear;
        use smartpaf_tensor::Rng64;

        let rig = rig();
        let mut rng = Rng64::new(91);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let pipe = PipelineBuilder::new(&[8])
            .affine(Linear::new(8, 8, &mut rng))
            .paf_relu(&paf, 4.0)
            .compile();
        let (report, trace_stats) = rig.dry_run(&pipe, false).expect("fits the chain");
        let pe = rig.paf_evaluator();
        let ct = pe
            .evaluator()
            .encrypt_replicated(&pipe.pad_input(&[0.1; 8]), &mut rng);
        let (_, enc_stats) = pipe.eval_encrypted(pe, None, &ct);
        assert_eq!(trace_stats.stage_levels, enc_stats.stage_levels);
        assert_eq!(trace_stats.final_level, enc_stats.final_level);
        // The traced ct-mult count is the exact-ladder count the
        // measured report exposes as `ct_mults_exact`.
        assert_eq!(
            report.total_ct_mults(),
            paf.exact_ct_mult_count() + 1,
            "one PAF-ReLU stage: exact ladder + the ReLU product"
        );
        // And the oracle is effectively free next to a real eval.
        assert!(report.total_levels() > 0);
    }

    #[test]
    fn encrypted_eval_dwarfs_plain_engine() {
        // The quantitative form of the paper's motivation: even on the
        // toy ring, one encrypted PAF-ReLU costs orders of magnitude
        // more than the plaintext engine's batch over the same slots.
        let mut rig = rig();
        let r = rig.measure_relu(PafForm::F1G2, 2);
        assert!(
            r.relu_latency > r.plain_latency,
            "encrypted {:?} should exceed plain {:?}",
            r.relu_latency,
            r.plain_latency
        );
        assert!(r.slowdown() > 10.0, "slowdown {}", r.slowdown());
    }
}
