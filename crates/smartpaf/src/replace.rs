//! The replacement engine: swapping non-polynomial slots for PAFs,
//! Coefficient Tuning, and DS→SS conversion.

use crate::config::TrainConfig;
use smartpaf_datasets::{Split, SynthDataset};
use smartpaf_nn::{Mode, Model, ScaleMode, SlotRef};
use smartpaf_polyfit::{tune_composite, ActivationProfile, CompositePaf, TuneConfig};

/// Number of non-polynomial slots in a model.
pub fn num_slots(model: &mut Model) -> usize {
    let mut n = 0;
    model.visit_slots(&mut |_| n += 1);
    n
}

/// Replaces the slot at `position` (inference order) with a PAF in
/// Dynamic Scaling mode. Returns `true` when a slot was replaced.
pub fn replace_slot(model: &mut Model, position: usize, paf: &CompositePaf) -> bool {
    let mut i = 0;
    let mut done = false;
    model.visit_slots(&mut |s| {
        if i == position && !done {
            match s {
                SlotRef::Relu(r) => r.replace_with(paf, ScaleMode::Dynamic),
                SlotRef::MaxPool(p) => p.replace_with(paf, ScaleMode::Dynamic),
            }
            done = true;
        }
        i += 1;
    });
    done
}

/// Replaces every slot with (a copy of) the same PAF — the "direct
/// replacement" the paper's baselines use. `relu_only` restricts the
/// replacement to ReLU slots (Tab. 3's "Replace ReLU" block).
pub fn replace_all(model: &mut Model, paf: &CompositePaf, relu_only: bool) {
    model.visit_slots(&mut |s| match s {
        SlotRef::Relu(r) => r.replace_with(paf, ScaleMode::Dynamic),
        SlotRef::MaxPool(p) => {
            if !relu_only {
                p.replace_with(paf, ScaleMode::Dynamic);
            }
        }
    });
}

/// Per-slot replacement with per-slot PAFs (used after CT).
pub fn replace_all_with(model: &mut Model, pafs: &[CompositePaf], relu_only: bool) {
    let mut i = 0;
    model.visit_slots(&mut |s| {
        let paf = &pafs[i % pafs.len()];
        match s {
            SlotRef::Relu(r) => r.replace_with(paf, ScaleMode::Dynamic),
            SlotRef::MaxPool(p) => {
                if !relu_only {
                    p.replace_with(paf, ScaleMode::Dynamic);
                }
            }
        }
        i += 1;
    });
}

/// Converts every replaced slot from Dynamic to Static Scaling at its
/// running max — the DS→SS conversion required for FHE deployment.
pub fn freeze_scales(model: &mut Model) {
    model.visit_slots(&mut |s| match s {
        SlotRef::Relu(r) => {
            if let Some(p) = r.paf_mut() {
                p.freeze_scale();
            }
        }
        SlotRef::MaxPool(p) => p.freeze_scale(),
    });
}

/// Multiplies every frozen static scale by `factor` — the §4.5
/// sensitivity experiment: accuracy should peak at `factor = 1.0`
/// (the running max) and fall off in both directions.
pub fn scale_static_scales(model: &mut Model, factor: f32) {
    model.visit_slots(&mut |s| match s {
        SlotRef::Relu(r) => {
            if let Some(p) = r.paf_mut() {
                p.scale_static_by(factor);
            }
        }
        SlotRef::MaxPool(p) => p.scale_static_by(factor),
    });
}

/// Collects the (possibly fine-tuned) PAF of every replaced ReLU slot
/// in inference order — the data behind the App. B coefficient tables.
pub fn collect_relu_pafs(model: &mut Model) -> Vec<CompositePaf> {
    let mut out = Vec::new();
    model.visit_slots(&mut |s| {
        if let SlotRef::Relu(r) = s {
            if let Some(p) = r.paf() {
                out.push(p.to_composite());
            }
        }
    });
    out
}

/// Profiles the input distribution of slot `position` by running
/// validation batches with a probe attached (paper Fig. 3 step 2).
///
/// Samples are normalised by their abs-max (the PAF sees `x / s` under
/// Dynamic Scaling) before histogramming.
pub fn profile_slot(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
    position: usize,
) -> ActivationProfile {
    // Attach probe.
    let mut i = 0;
    model.visit_slots(&mut |s| {
        if i == position {
            match s {
                SlotRef::Relu(r) => r.start_probe(),
                SlotRef::MaxPool(p) => p.start_probe(),
            }
        }
        i += 1;
    });
    for b in 0..config.val_batches.max(2) {
        let (x, _) = dataset.batch(Split::Train, b * config.batch_size, config.batch_size);
        let _ = model.forward(&x, Mode::Eval);
    }
    // Detach and collect.
    let mut samples = Vec::new();
    let mut i = 0;
    model.visit_slots(&mut |s| {
        if i == position {
            samples = match s {
                SlotRef::Relu(r) => r.take_probe(),
                SlotRef::MaxPool(p) => p.take_probe(),
            };
        }
        i += 1;
    });
    let max = samples.iter().fold(1e-6f32, |m, &v| m.max(v.abs()));
    for v in &mut samples {
        *v /= max;
    }
    ActivationProfile::from_samples(&samples, 64)
}

/// Coefficient Tuning for one slot: profile, tune, return the post-CT
/// PAF (paper §4.2).
pub fn coefficient_tune(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
    position: usize,
    base_paf: &CompositePaf,
) -> CompositePaf {
    let profile = profile_slot(model, dataset, config, position);
    let (tuned, _report) = tune_composite(base_paf, &profile, &TuneConfig::default());
    tuned
}

/// Coefficient Tuning for every slot (offline, before any training —
/// the framework applies CT once up front, Fig. 6).
pub fn coefficient_tune_all(
    model: &mut Model,
    dataset: &SynthDataset,
    config: &TrainConfig,
    base_paf: &CompositePaf,
) -> Vec<CompositePaf> {
    let n = num_slots(model);
    (0..n)
        .map(|i| coefficient_tune(model, dataset, config, i, base_paf))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartpaf_datasets::SynthSpec;
    use smartpaf_nn::mini_cnn;
    use smartpaf_polyfit::PafForm;
    use smartpaf_tensor::Rng64;

    fn setup() -> (Model, SynthDataset, TrainConfig) {
        let spec = SynthSpec::tiny(21);
        let dataset = SynthDataset::new(spec);
        let config = TrainConfig::test_scale(21);
        let mut rng = Rng64::new(21);
        let model = mini_cnn(spec.classes, 0.25, &mut rng);
        (model, dataset, config)
    }

    #[test]
    fn slot_count_mini_cnn() {
        let (mut model, ..) = setup();
        assert_eq!(num_slots(&mut model), 8); // 6 ReLU + 2 MaxPool
    }

    #[test]
    fn replace_single_slot() {
        let (mut model, ..) = setup();
        let paf = CompositePaf::from_form(PafForm::F1G2);
        assert!(replace_slot(&mut model, 0, &paf));
        let mut replaced = 0;
        model.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                if r.is_replaced() {
                    replaced += 1;
                }
            }
        });
        assert_eq!(replaced, 1);
        // Out-of-range position replaces nothing.
        assert!(!replace_slot(&mut model, 99, &paf));
    }

    #[test]
    fn replace_all_relu_only() {
        let (mut model, ..) = setup();
        let paf = CompositePaf::from_form(PafForm::F1G2);
        replace_all(&mut model, &paf, true);
        let mut pools_replaced = 0;
        let mut relus_replaced = 0;
        model.visit_slots(&mut |s| match s {
            SlotRef::Relu(r) => relus_replaced += r.is_replaced() as usize,
            SlotRef::MaxPool(p) => pools_replaced += p.is_replaced() as usize,
        });
        assert_eq!(relus_replaced, 6);
        assert_eq!(pools_replaced, 0);
    }

    #[test]
    fn profile_reflects_activations() {
        let (mut model, dataset, config) = setup();
        let profile = profile_slot(&mut model, &dataset, &config, 0);
        let total: f64 = profile.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Normalised samples must occupy more than one bin.
        let nonzero = profile.weights().iter().filter(|&&w| w > 0.0).count();
        assert!(nonzero > 4, "{nonzero} bins");
    }

    #[test]
    fn ct_produces_different_coefficients() {
        let (mut model, dataset, config) = setup();
        let base = CompositePaf::from_form(PafForm::F1G2);
        let tuned = coefficient_tune(&mut model, &dataset, &config, 0, &base);
        assert_ne!(
            tuned.stages()[0].coeffs(),
            base.stages()[0].coeffs(),
            "CT should move the coefficients"
        );
    }

    #[test]
    fn freeze_scales_converts_to_static() {
        let (mut model, dataset, config) = setup();
        let paf = CompositePaf::from_form(PafForm::F1G2);
        replace_all(&mut model, &paf, false);
        // Run a training-mode forward so running maxima are populated.
        let (x, _) = dataset.batch(Split::Train, 0, config.batch_size);
        let _ = model.forward(&x, Mode::Train);
        freeze_scales(&mut model);
        model.visit_slots(&mut |s| {
            if let SlotRef::Relu(r) = s {
                if let Some(p) = r.paf_mut() {
                    assert!(matches!(p.scale_mode, ScaleMode::Static(_)));
                }
            }
        });
    }

    #[test]
    fn collect_pafs_roundtrip() {
        let (mut model, ..) = setup();
        let paf = CompositePaf::from_form(PafForm::F2G2);
        replace_all(&mut model, &paf, true);
        let collected = collect_relu_pafs(&mut model);
        assert_eq!(collected.len(), 6);
        for c in &collected {
            assert_eq!(c.num_stages(), paf.num_stages());
        }
    }
}
