//! Dense univariate polynomials over `f64`.

use std::fmt;

/// A polynomial with coefficients in ascending degree order:
/// `coeffs[i]` multiplies `x^i`.
///
/// # Example
///
/// ```
/// use smartpaf_polyfit::Polynomial;
///
/// // 1.5x - 0.5x^3  (the Cheon f1 base)
/// let f1 = Polynomial::new(vec![0.0, 1.5, 0.0, -0.5]);
/// assert_eq!(f1.eval(1.0), 1.0);
/// assert_eq!(f1.eval(-1.0), -1.0);
/// assert_eq!(f1.degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients. Trailing zeros
    /// are trimmed (the zero polynomial keeps one coefficient).
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// An odd polynomial from its odd-degree coefficients:
    /// `odd[i]` multiplies `x^(2i+1)`.
    ///
    /// This is the natural representation for sign-approximation bases,
    /// which are all odd (paper App. B, Eq. 5).
    pub fn from_odd(odd: &[f64]) -> Self {
        let mut coeffs = vec![0.0; odd.len() * 2];
        for (i, &c) in odd.iter().enumerate() {
            coeffs[2 * i + 1] = c;
        }
        Polynomial::new(coeffs)
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    /// The identity polynomial `x`.
    pub fn identity() -> Self {
        Polynomial {
            coeffs: vec![0.0, 1.0],
        }
    }

    /// Coefficients in ascending degree order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Mutable coefficients in ascending degree order.
    pub fn coeffs_mut(&mut self) -> &mut [f64] {
        &mut self.coeffs
    }

    /// Odd-degree coefficients `[c1, c3, c5, ...]` (ignores even terms).
    pub fn odd_coeffs(&self) -> Vec<f64> {
        self.coeffs.iter().skip(1).step_by(2).copied().collect()
    }

    /// Degree of the polynomial (0 for constants, including zero).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// True when all even-degree coefficients vanish.
    pub fn is_odd_function(&self) -> bool {
        self.coeffs.iter().step_by(2).all(|&c| c == 0.0)
    }

    /// Horner evaluation.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluation exploiting odd symmetry: Horner in `y = x^2` on the
    /// odd coefficients, then one multiply by `x`. Roughly halves the
    /// multiplication count for sign bases; used by the CKKS evaluator.
    ///
    /// For repeated evaluation prefer [`crate::PolyEval`], which packs
    /// the odd coefficients once and offers batch backends.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the polynomial is not an odd function.
    /// (The full-coefficient scan is as expensive as the evaluation
    /// itself, so release builds skip it — this call sits on the PAF
    /// hot path.)
    pub fn eval_odd(&self, x: f64) -> f64 {
        debug_assert!(self.is_odd_function(), "eval_odd on a non-odd polynomial");
        if self.coeffs.len() < 2 {
            return 0.0; // the zero polynomial
        }
        let y = x * x;
        let mut acc = 0.0;
        // A trimmed odd polynomial has even coefficient length, so each
        // exact reverse chunk is `[even, odd]` and `ch[1]` walks the
        // odd coefficients highest-first without the `step_by(2).rev()`
        // adaptor chain (whose backward stepping, plus the per-call
        // odd-function scan, made this path ~2.5x slower than dense
        // Horner in the PR-1 baseline).
        for ch in self.coeffs.rchunks_exact(2) {
            acc = acc * y + ch[1];
        }
        acc * x
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() == 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, &c)| c * i as f64)
                .collect(),
        )
    }

    /// Polynomial sum.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            out[i] += c;
        }
        for (i, &c) in other.coeffs.iter().enumerate() {
            out[i] += c;
        }
        Polynomial::new(out)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Scales all coefficients by `alpha`.
    pub fn scale(&self, alpha: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&c| c * alpha).collect())
    }

    /// Functional composition `self(other(x))`, expanded symbolically.
    pub fn compose(&self, inner: &Polynomial) -> Polynomial {
        // Horner over polynomials.
        let mut acc = Polynomial::zero();
        for &c in self.coeffs.iter().rev() {
            acc = acc.mul(inner).add(&Polynomial::new(vec![c]));
        }
        acc
    }

    /// `p(alpha * x)` — substitute a scaled argument. This is how Static
    /// Scaling folds the scale factor into the polynomial itself.
    pub fn substitute_scaled_input(&self, alpha: f64) -> Polynomial {
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| c * alpha.powi(i as i32))
                .collect(),
        )
    }

    /// Maximum absolute error against `f` on a uniform grid over `[lo, hi]`.
    pub fn max_error_on(&self, f: impl Fn(f64) -> f64, lo: f64, hi: f64, samples: usize) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..samples {
            let x = lo + (hi - lo) * i as f64 / (samples - 1) as f64;
            worst = worst.max((self.eval(x) - f(x)).abs());
        }
        worst
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.coeffs.len() > 1 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a:.6}")?,
                1 => write!(f, "{a:.6}*x")?,
                _ => write!(f, "{a:.6}*x^{i}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_horner_by_hand() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x^2
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 9.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(Polynomial::new(vec![0.0, 0.0]).degree(), 0);
    }

    #[test]
    fn from_odd_layout() {
        let p = Polynomial::from_odd(&[1.5, -0.5]); // 1.5x - 0.5x^3
        assert_eq!(p.coeffs(), &[0.0, 1.5, 0.0, -0.5]);
        assert!(p.is_odd_function());
        assert_eq!(p.odd_coeffs(), vec![1.5, -0.5]);
    }

    #[test]
    fn eval_odd_matches_eval() {
        let p = Polynomial::from_odd(&[2.0762, -1.3271]);
        for i in -10..=10 {
            let x = i as f64 / 10.0;
            assert!((p.eval(x) - p.eval_odd(x)).abs() < 1e-12);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-odd")]
    fn eval_odd_rejects_even_terms() {
        Polynomial::new(vec![1.0, 1.0]).eval_odd(0.5);
    }

    #[test]
    fn eval_odd_zero_polynomial() {
        assert_eq!(Polynomial::zero().eval_odd(0.7), 0.0);
    }

    #[test]
    fn eval_odd_with_zero_leading_odd_coeff() {
        // coeffs_mut can zero the top odd coefficient without trimming;
        // the packed reverse walk must still be correct.
        let mut p = Polynomial::from_odd(&[1.5, -0.5]);
        p.coeffs_mut()[3] = 0.0;
        assert!((p.eval_odd(0.5) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn derivative_known() {
        let p = Polynomial::new(vec![5.0, 1.0, 2.0, 3.0]); // 5 + x + 2x^2 + 3x^3
        assert_eq!(p.derivative().coeffs(), &[1.0, 4.0, 9.0]);
        assert_eq!(Polynomial::new(vec![7.0]).derivative(), Polynomial::zero());
    }

    #[test]
    fn mul_and_add() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(a.mul(&b).coeffs(), &[-1.0, 0.0, 1.0]); // x^2 - 1
        assert_eq!(a.add(&b).coeffs(), &[0.0, 2.0]);
    }

    #[test]
    fn compose_expands_correctly() {
        // p(x) = x^2, q(x) = x + 1 -> p(q(x)) = x^2 + 2x + 1
        let p = Polynomial::new(vec![0.0, 0.0, 1.0]);
        let q = Polynomial::new(vec![1.0, 1.0]);
        assert_eq!(p.compose(&q).coeffs(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn compose_agrees_with_pointwise() {
        let f = Polynomial::from_odd(&[1.875, -1.25, 0.375]); // f2
        let g = Polynomial::from_odd(&[2.0762, -1.3271]); // g1
        let comp = f.compose(&g);
        for i in -8..=8 {
            let x = i as f64 / 8.0;
            assert!((comp.eval(x) - f.eval(g.eval(x))).abs() < 1e-9);
        }
    }

    #[test]
    fn substitute_scaled_input() {
        let p = Polynomial::new(vec![0.0, 1.0, 0.0, 1.0]); // x + x^3
        let q = p.substitute_scaled_input(2.0); // 2x + 8x^3
        assert_eq!(q.coeffs(), &[0.0, 2.0, 0.0, 8.0]);
        assert_eq!(q.eval(0.5), p.eval(1.0));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Polynomial::zero()).is_empty());
        let s = format!("{}", Polynomial::from_odd(&[1.5, -0.5]));
        assert!(s.contains("x^3"), "{s}");
    }

    #[test]
    fn max_error_of_exact_match_is_zero() {
        let p = Polynomial::new(vec![0.0, 1.0]);
        assert_eq!(p.max_error_on(|x| x, -1.0, 1.0, 101), 0.0);
    }
}
