//! Remez exchange for minimax sign-function approximation.
//!
//! Lee et al. 2021 obtain their high-degree PAF comparator by minimax
//! (equioscillating) approximation of `sign(x)` over
//! `[-1, -eps] ∪ [eps, 1]`. Because `sign` is odd, this is equivalent
//! to approximating the constant `1` on `[eps, 1]` with an *odd*
//! polynomial, which is what this module does.

use crate::linalg::solve_dense;
use crate::poly::Polynomial;

/// Outcome of a Remez run.
#[derive(Debug, Clone)]
pub struct RemezReport {
    /// The minimax odd polynomial.
    pub poly: Polynomial,
    /// The equioscillation error level |E|.
    pub error: f64,
    /// Number of exchange iterations performed.
    pub iterations: usize,
}

/// Minimax odd approximation of `sign(x)` on `[-hi, -lo] ∪ [lo, hi]`
/// with odd degree `2k+1` where `k = n_odd_terms - 1`.
///
/// # Panics
///
/// Panics if `n_odd_terms == 0` or the interval is degenerate.
pub fn minimax_sign(n_odd_terms: usize, lo: f64, hi: f64) -> RemezReport {
    assert!(n_odd_terms > 0, "need at least one basis term");
    assert!(0.0 < lo && lo < hi, "invalid interval [{lo}, {hi}]");
    let nb = n_odd_terms;
    let m = nb + 1; // reference points

    // Initial reference: Chebyshev-extrema-like distribution on [lo, hi].
    let mut refs: Vec<f64> = (0..m)
        .map(|i| {
            let t = std::f64::consts::PI * i as f64 / (m - 1) as f64;
            0.5 * (lo + hi) - 0.5 * (hi - lo) * t.cos()
        })
        .collect();

    let grid_n = 4000;
    let grid: Vec<f64> = (0..grid_n)
        .map(|i| lo + (hi - lo) * i as f64 / (grid_n - 1) as f64)
        .collect();

    let mut poly = Polynomial::zero();
    let mut level = 0.0f64;
    let mut iterations = 0;
    for it in 0..60 {
        iterations = it + 1;
        // Solve: sum_j c_j x_i^(2j+1) + (-1)^i E = 1 at the references.
        let n = nb + 1;
        let mut a = vec![0.0f64; n * n];
        let mut b = vec![0.0f64; n];
        for (i, &x) in refs.iter().enumerate() {
            for j in 0..nb {
                a[i * n + j] = x.powi(2 * j as i32 + 1);
            }
            a[i * n + nb] = if i % 2 == 0 { 1.0 } else { -1.0 };
            b[i] = 1.0;
        }
        let sol = match solve_dense(&a, &b, n) {
            Some(s) => s,
            None => break, // keep last good iterate
        };
        poly = Polynomial::from_odd(&sol[..nb]);
        let new_level = sol[nb].abs();

        // Locate alternating extrema of the error on the dense grid.
        let err: Vec<f64> = grid.iter().map(|&x| poly.eval(x) - 1.0).collect();
        let mut extrema: Vec<(f64, f64)> = Vec::new(); // (x, e)
        for i in 0..grid_n {
            let is_ext = (i == 0
                || (err[i] - err[i - 1])
                    * (if i + 1 < grid_n {
                        err[i + 1] - err[i]
                    } else {
                        0.0
                    })
                    <= 0.0)
                && (i == 0 || i + 1 == grid_n || {
                    let dl = err[i] - err[i - 1];
                    let dr = err[i + 1] - err[i];
                    dl * dr <= 0.0
                });
            if is_ext {
                extrema.push((grid[i], err[i]));
            }
        }
        // Enforce sign alternation: among consecutive same-sign extrema
        // keep the largest magnitude.
        let mut alt: Vec<(f64, f64)> = Vec::new();
        for &(x, e) in &extrema {
            match alt.last() {
                Some(&(_, le)) if le.signum() == e.signum() => {
                    if e.abs() > le.abs() {
                        *alt.last_mut().unwrap() = (x, e);
                    }
                }
                _ => alt.push((x, e)),
            }
        }
        // Trim to exactly m points, dropping the smallest-magnitude end.
        while alt.len() > m {
            let first = alt.first().unwrap().1.abs();
            let last = alt.last().unwrap().1.abs();
            if first <= last {
                alt.remove(0);
            } else {
                alt.pop();
            }
        }
        if alt.len() < m {
            // Degenerate (error too flat to resolve on the grid): done.
            level = new_level;
            break;
        }
        let new_refs: Vec<f64> = alt.iter().map(|&(x, _)| x).collect();
        let converged = (new_level - level).abs() < 1e-13 * (1.0 + new_level);
        level = new_level;
        refs = new_refs;
        if converged && it > 2 {
            break;
        }
    }

    RemezReport {
        poly,
        error: level,
        iterations,
    }
}

/// Builds a composite minimax sign approximation (Lee et al.'s
/// construction): each stage is a minimax odd polynomial whose domain
/// is the output range of the previous stage.
///
/// `odd_terms_per_stage[i]` is the number of odd basis terms of stage
/// `i` (degree `2t-1`); `eps` is the smallest |x| resolved by stage 0.
///
/// Degrees `[4, 4, 7]` (i.e. 7, 7, 13) give the paper's "27-degree"
/// depth-10 comparator: depth = 3 + 3 + 4 = 10, summed degree 27.
///
/// # Panics
///
/// Panics on an empty stage list or invalid `eps`.
pub fn minimax_sign_composite(odd_terms_per_stage: &[usize], eps: f64) -> Vec<RemezReport> {
    assert!(!odd_terms_per_stage.is_empty(), "no stages");
    assert!(0.0 < eps && eps < 1.0, "eps must be in (0,1)");
    let mut reports = Vec::with_capacity(odd_terms_per_stage.len());
    let mut lo = eps;
    let mut hi = 1.0;
    for &t in odd_terms_per_stage {
        let rep = minimax_sign(t, lo, hi);
        // Output range of this stage on [lo, hi] is [1-E, 1+E].
        lo = 1.0 - rep.error;
        hi = 1.0 + rep.error;
        reports.push(rep);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree3_minimax_equioscillates() {
        let rep = minimax_sign(2, 0.2, 1.0); // degree 3
                                             // Error at the ends and interior extrema should all be ~|E|.
        let e_lo = (rep.poly.eval(0.2) - 1.0).abs();
        let e_hi = (rep.poly.eval(1.0) - 1.0).abs();
        assert!((e_lo - rep.error).abs() < 1e-6, "{e_lo} vs {}", rep.error);
        assert!((e_hi - rep.error).abs() < 1e-6, "{e_hi} vs {}", rep.error);
    }

    #[test]
    fn error_decreases_with_degree() {
        let e1 = minimax_sign(2, 0.25, 1.0).error;
        let e2 = minimax_sign(4, 0.25, 1.0).error;
        let e3 = minimax_sign(6, 0.25, 1.0).error;
        assert!(e2 < e1, "{e2} !< {e1}");
        assert!(e3 < e2, "{e3} !< {e2}");
    }

    #[test]
    fn minimax_beats_uniform_lsq_in_sup_norm() {
        use crate::linalg::weighted_lsq_polyfit;
        let lo = 0.3;
        let rep = minimax_sign(3, lo, 1.0);
        let xs: Vec<f64> = (0..400)
            .map(|i| lo + (1.0 - lo) * i as f64 / 399.0)
            .collect();
        let ys = vec![1.0; xs.len()];
        let ws = vec![1.0; xs.len()];
        let lsq = weighted_lsq_polyfit(&xs, &ys, &ws, 5, true).unwrap();
        let sup_minimax = rep.poly.max_error_on(|_| 1.0, lo, 1.0, 2000);
        let sup_lsq = lsq.max_error_on(|_| 1.0, lo, 1.0, 2000);
        assert!(
            sup_minimax <= sup_lsq + 1e-9,
            "minimax {sup_minimax} vs lsq {sup_lsq}"
        );
    }

    #[test]
    fn odd_symmetry_gives_sign_on_negative_side() {
        let rep = minimax_sign(3, 0.1, 1.0);
        for i in 1..=10 {
            let x = 0.1 + 0.09 * i as f64;
            assert!((rep.poly.eval(-x) + rep.poly.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn composite_sharpens_transition() {
        let comps = minimax_sign_composite(&[4, 4], 0.05);
        assert_eq!(comps.len(), 2);
        // Composite error should be far smaller than single stage.
        let single = minimax_sign(4, 0.05, 1.0);
        let x = 0.05f64;
        let composed = comps[1].poly.eval(comps[0].poly.eval(x));
        let single_v = single.poly.eval(x);
        assert!(
            (composed - 1.0).abs() < (single_v - 1.0).abs(),
            "composite {composed} vs single {single_v}"
        );
    }

    #[test]
    fn paper_comparator_depth_ten_geometry() {
        // Stages of odd-terms [4,4,7] = degrees [7,7,13], summed 27.
        let comps = minimax_sign_composite(&[4, 4, 7], 0.02);
        let degs: Vec<usize> = comps.iter().map(|r| r.poly.degree()).collect();
        assert_eq!(degs, vec![7, 7, 13]);
        // Final accuracy: good sign approximation over the domain.
        let eval = |x: f64| comps.iter().fold(x, |acc, r| r.poly.eval(acc));
        for &x in &[0.02, 0.1, 0.5, 1.0] {
            assert!((eval(x) - 1.0).abs() < 1e-3, "x={x} -> {}", eval(x));
            assert!((eval(-x) + 1.0).abs() < 1e-3);
        }
    }
}
