//! α-parameterised minimax sign composites (Lee et al. 2021/2022).
//!
//! Lee et al. parameterise sign approximation by a precision target α:
//! the composite must satisfy `|p(x) − sign(x)| ≤ 2^(1−α)` for all
//! `|x| ∈ [2^(−α), 1]`. This module searches stage configurations with
//! our Remez solver until the target is met — the generator behind the
//! paper's "α = 7", "α = 10" comparator labels.

use crate::composite::CompositePaf;
use crate::remez::minimax_sign_composite;

/// Result of an α-composite search.
#[derive(Debug, Clone)]
pub struct AlphaComposite {
    /// The generated composite.
    pub paf: CompositePaf,
    /// The precision parameter it satisfies.
    pub alpha: u32,
    /// Achieved max error on `[2^-α, 1]`.
    pub achieved_error: f64,
    /// Stage odd-term counts used.
    pub stage_terms: Vec<usize>,
}

/// Builds a minimax composite meeting precision `alpha`, preferring
/// configurations with minimal multiplication depth.
///
/// # Panics
///
/// Panics if `alpha` is outside `3..=14` (the range used in the
/// literature; larger values need deeper stacks than the search
/// space covers).
pub fn alpha_composite(alpha: u32) -> AlphaComposite {
    assert!((3..=14).contains(&alpha), "alpha {alpha} out of range");
    let eps = 2f64.powi(-(alpha as i32));
    let target = 2f64.powi(1 - alpha as i32);
    // Candidate stage configurations ordered by multiplication depth
    // (each odd-term count t gives a degree 2t-1 stage of depth
    // ceil(log2(2t))).
    let candidates: &[&[usize]] = &[
        &[2],
        &[3],
        &[4],
        &[2, 2],
        &[3, 2],
        &[4, 2],
        &[4, 3],
        &[4, 4],
        &[4, 4, 2],
        &[4, 4, 4],
        &[4, 4, 7],
        &[4, 4, 4, 4],
        &[4, 4, 4, 7],
        &[7, 7, 7, 7],
    ];
    for stages in candidates {
        let reports = minimax_sign_composite(stages, eps);
        let paf = CompositePaf::new(reports.iter().map(|r| r.poly.clone()).collect());
        let err = paf.sign_error(eps, 2000);
        if err <= target {
            return AlphaComposite {
                paf,
                alpha,
                achieved_error: err,
                stage_terms: stages.to_vec(),
            };
        }
    }
    panic!("no stage configuration reached alpha = {alpha}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha4_meets_target() {
        let a = alpha_composite(4);
        assert!(a.achieved_error <= 2f64.powi(-3), "{}", a.achieved_error);
        assert_eq!(a.alpha, 4);
    }

    #[test]
    fn alpha7_meets_target() {
        let a = alpha_composite(7);
        assert!(a.achieved_error <= 2f64.powi(-6), "{}", a.achieved_error);
    }

    #[test]
    fn higher_alpha_needs_no_less_depth() {
        let lo = alpha_composite(4);
        let hi = alpha_composite(9);
        assert!(
            hi.paf.mult_depth() >= lo.paf.mult_depth(),
            "alpha 9 depth {} vs alpha 4 depth {}",
            hi.paf.mult_depth(),
            lo.paf.mult_depth()
        );
    }

    #[test]
    fn achieved_error_holds_on_domain() {
        let a = alpha_composite(6);
        let eps = 2f64.powi(-6);
        for i in 0..200 {
            let x = eps + (1.0 - eps) * i as f64 / 199.0;
            assert!((a.paf.eval(x) - 1.0).abs() <= a.achieved_error + 1e-12);
        }
    }
}
