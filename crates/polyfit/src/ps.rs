//! Paterson–Stockmeyer polynomial evaluation.
//!
//! Splits a degree-`d` polynomial into `ceil((d+1)/k)` blocks of `k`
//! coefficients ("baby steps") and combines them with powers of `x^k`
//! ("giant steps"): non-scalar multiplication count drops from `O(d)`
//! to `O(sqrt(d))`, the classic trade against the
//! exponentiation-by-squaring schedule used by the CKKS evaluator
//! (DESIGN.md §5 ablation).

use crate::poly::Polynomial;
use crate::polyeval::{EvalPlan, PolyEval};

/// Plan for a Paterson–Stockmeyer evaluation of one polynomial.
#[derive(Debug, Clone)]
pub struct PsPlan {
    /// Baby-step block size `k` (≈ sqrt(d+1)).
    pub block: usize,
    /// Number of giant-step blocks.
    pub blocks: usize,
    /// Non-scalar multiplications needed: baby powers + giant powers +
    /// one per block combination.
    pub nonscalar_mults: usize,
}

/// Builds the PS plan for a polynomial of degree `d`.
///
/// # Panics
///
/// Panics for the zero-degree case (`d == 0`), which needs no plan.
pub fn ps_plan(d: usize) -> PsPlan {
    assert!(d > 0, "constant polynomials need no evaluation plan");
    let n = d + 1;
    let block = (n as f64).sqrt().ceil() as usize;
    let blocks = n.div_ceil(block);
    // Baby steps: x^2..x^block (block-1 mults). Giant steps:
    // x^(2k), x^(3k)... via repeated mult by x^k (blocks-2 mults, if
    // any), plus one mult per block beyond the lowest.
    let giant_powers = blocks.saturating_sub(2);
    let combine = blocks.saturating_sub(1);
    PsPlan {
        block,
        blocks,
        nonscalar_mults: (block - 1) + giant_powers + combine,
    }
}

/// Evaluates `p(x)` with the Paterson–Stockmeyer schedule. Numerically
/// identical to Horner up to floating-point reassociation; exists so
/// tests can validate the schedule the ciphertext evaluator would use.
///
/// One-shot wrapper over the evaluation engine's
/// [`EvalPlan::DensePs`] backend — prepare a [`PolyEval`] directly to
/// amortise the packing across calls.
pub fn ps_eval(p: &Polynomial, x: f64) -> f64 {
    PolyEval::with_plan(p, EvalPlan::DensePs).eval(x)
}

/// Non-scalar multiplication count of the exponentiation-by-squaring
/// odd schedule used by `smartpaf-ckks` for an odd polynomial with
/// `n_odd` odd terms (matches `CompositePaf::ct_mult_count` per
/// stage).
pub fn squaring_schedule_mults(n_odd: usize) -> usize {
    if n_odd <= 1 {
        0
    } else {
        1 + (n_odd - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_matches_horner() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0, -1.25, 0.75, 2.0, -0.1]);
        for i in -20..=20 {
            let x = i as f64 / 10.0;
            let a = p.eval(x);
            let b = ps_eval(&p, x);
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b} at {x}");
        }
    }

    #[test]
    fn ps_constant_and_linear() {
        assert_eq!(ps_eval(&Polynomial::new(vec![7.0]), 3.0), 7.0);
        let lin = Polynomial::new(vec![1.0, 2.0]);
        assert_eq!(ps_eval(&lin, 3.0), 7.0);
    }

    #[test]
    fn plan_counts_sublinear() {
        // Degree 27: PS should need far fewer than 27 nonscalar mults.
        let plan = ps_plan(27);
        assert!(plan.nonscalar_mults <= 14, "{:?}", plan);
        assert!(plan.block * plan.blocks >= 28);
    }

    #[test]
    fn plan_beats_naive_for_large_degree() {
        for d in [7, 13, 27, 63] {
            let plan = ps_plan(d);
            assert!(
                plan.nonscalar_mults < d,
                "degree {d}: PS {} mults",
                plan.nonscalar_mults
            );
        }
    }

    #[test]
    fn squaring_schedule_known_counts() {
        assert_eq!(squaring_schedule_mults(1), 0); // a*x only
        assert_eq!(squaring_schedule_mults(2), 2); // x^2 then x^3 term
        assert_eq!(squaring_schedule_mults(4), 4); // deg-7 odd stage
    }

    #[test]
    fn ps_on_odd_sign_base() {
        let g3 = Polynomial::from_odd(&[4.4814, -16.1885, 25.0137, -12.5586]);
        for i in 1..=10 {
            let x = i as f64 / 10.0;
            assert!((ps_eval(&g3, x) - g3.eval(x)).abs() < 1e-9);
        }
    }
}
