//! Property-based tests for the polynomial machinery.

use crate::composite::{max_via_sign, relu_via_sign, sign_exact, CompositePaf, PafForm};
use crate::linalg::{solve_dense, weighted_lsq_polyfit};
use crate::poly::Polynomial;
use proptest::prelude::*;

fn coeffs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, 1..6)
}

proptest! {
    /// Polynomial addition commutes and agrees with pointwise addition.
    #[test]
    fn poly_add_pointwise(a in coeffs(), b in coeffs(), x in -2.0f64..2.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let sum = pa.add(&pb);
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
        prop_assert_eq!(pa.add(&pb), pb.add(&pa));
    }

    /// Polynomial multiplication agrees with pointwise multiplication.
    #[test]
    fn poly_mul_pointwise(a in coeffs(), b in coeffs(), x in -2.0f64..2.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let prod = pa.mul(&pb);
        prop_assert!((prod.eval(x) - pa.eval(x) * pb.eval(x)).abs() < 1e-6);
    }

    /// Symbolic composition agrees with functional composition.
    #[test]
    fn poly_compose_pointwise(a in coeffs(), b in coeffs(), x in -1.0f64..1.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let comp = pa.compose(&pb);
        prop_assert!((comp.eval(x) - pa.eval(pb.eval(x))).abs() < 1e-4);
    }

    /// Derivative obeys the product rule (checked pointwise).
    #[test]
    fn derivative_product_rule(a in coeffs(), b in coeffs(), x in -1.5f64..1.5) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let lhs = pa.mul(&pb).derivative().eval(x);
        let rhs = pa.derivative().eval(x) * pb.eval(x) + pa.eval(x) * pb.derivative().eval(x);
        prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    /// Odd polynomials are odd functions.
    #[test]
    fn odd_polys_are_odd(odd in proptest::collection::vec(-3.0f64..3.0, 1..5), x in -1.0f64..1.0) {
        let p = Polynomial::from_odd(&odd);
        prop_assert!((p.eval(-x) + p.eval(x)).abs() < 1e-9);
    }

    /// relu_via_sign with the *exact* sign recovers exact ReLU.
    #[test]
    fn relu_identity_with_exact_sign(x in -10.0f64..10.0) {
        prop_assert_eq!(relu_via_sign(sign_exact, x), x.max(0.0));
    }

    /// max_via_sign with the exact sign recovers exact max, and is
    /// symmetric in its arguments.
    #[test]
    fn max_identity_with_exact_sign(x in -5.0f64..5.0, y in -5.0f64..5.0) {
        // (x+y) + (x−y) is not exactly 2·max in floats; allow one ulp-ish.
        prop_assert!((max_via_sign(sign_exact, x, y) - x.max(y)).abs() < 1e-12);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let s = |v: f64| paf.eval(v);
        let a = max_via_sign(s, x, y);
        let b = max_via_sign(s, y, x);
        prop_assert!((a - b).abs() < 1e-9, "max not symmetric: {a} vs {b}");
    }

    /// solve_dense actually solves the system (well-conditioned inputs).
    #[test]
    fn solver_residual_small(
        d in proptest::collection::vec(1.0f64..3.0, 3),
        o in proptest::collection::vec(-0.3f64..0.3, 6),
        b in proptest::collection::vec(-5.0f64..5.0, 3),
    ) {
        // Diagonally dominant 3x3.
        let a = [
            d[0], o[0], o[1],
            o[2], d[1], o[3],
            o[4], o[5], d[2],
        ];
        let x = solve_dense(&a, &b, 3).expect("diagonally dominant");
        for i in 0..3 {
            let r: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum::<f64>() - b[i];
            prop_assert!(r.abs() < 1e-8, "residual {r}");
        }
    }

    /// LSQ residual is orthogonal to the basis (normal equations hold).
    #[test]
    fn lsq_normal_equations(seed in 0u64..1000) {
        let xs: Vec<f64> = (0..40).map(|i| -1.0 + i as f64 / 19.5).collect();
        let ys: Vec<f64> = xs.iter().enumerate()
            .map(|(i, &x)| x.tanh() + 0.01 * ((seed as f64 + i as f64).sin()))
            .collect();
        let ws = vec![1.0; xs.len()];
        let fit = weighted_lsq_polyfit(&xs, &ys, &ws, 3, false).expect("solvable");
        for p in 0..=3usize {
            let dot: f64 = xs.iter().zip(&ys)
                .map(|(&x, &y)| (fit.eval(x) - y) * x.powi(p as i32))
                .sum();
            prop_assert!(dot.abs() < 1e-6, "residual not orthogonal to x^{p}: {dot}");
        }
    }

    /// Static-scale folding: paf.with_input_scale(s).eval(x) == paf.eval(s*x).
    #[test]
    fn scale_folding_identity(s in 0.1f64..3.0, x in -1.0f64..1.0) {
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let folded = paf.with_input_scale(s);
        let (a, b) = (folded.eval(x), paf.eval(s * x));
        // Relative tolerance: far outside [-1,1] composite values blow up
        // and powi-vs-Horner rounding differs in the last bits.
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())), "{a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Search candidates report the same depth as their materialised
    /// composite, for arbitrary stage sequences.
    #[test]
    fn search_candidate_depth_consistent(
        picks in proptest::collection::vec(0usize..6, 1..4),
    ) {
        use crate::search::{BaseStage, SearchConfig, enumerate_composites};
        let cfg = SearchConfig { max_stages: 3, samples: 21, ..SearchConfig::default() };
        let all = BaseStage::all();
        let stages: Vec<BaseStage> = picks.iter().map(|&i| all[i]).collect();
        // Find this sequence among the enumeration (if bounded).
        let cands = enumerate_composites(&cfg);
        if let Some(c) = cands.iter().find(|c| c.stages == stages) {
            let paf = c.to_composite();
            prop_assert_eq!(c.depth, paf.mult_depth());
            prop_assert_eq!(c.degree, paf.sum_degree());
        }
    }

    /// The Pareto frontier is dominance-free: no member is beaten on
    /// both axes by any enumerated candidate.
    #[test]
    fn frontier_members_undominated(eps in 0.02f64..0.2) {
        use crate::search::{SearchConfig, enumerate_composites, pareto_frontier};
        let cfg = SearchConfig { eps, max_stages: 2, samples: 41, ..SearchConfig::default() };
        let cands = enumerate_composites(&cfg);
        let front = pareto_frontier(cands.clone());
        for f in &front {
            for c in &cands {
                let dominates = c.depth < f.depth && c.max_error < f.max_error;
                prop_assert!(!dominates, "{} dominated by {}", f.name(), c.name());
            }
        }
    }
}
