//! Property-based tests for the polynomial machinery.

use crate::composite::{max_via_sign, relu_via_sign, sign_exact, CompositePaf, PafForm};
use crate::linalg::{solve_dense, weighted_lsq_polyfit};
use crate::poly::Polynomial;
use crate::polyeval::{CompositeEval, EvalPlan, PolyEval};
use proptest::prelude::*;

fn coeffs() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-5.0f64..5.0, 1..6)
}

/// Reference evaluation by explicit `powi` monomials — the backend the
/// engine proptests compare everything against.
fn naive_powi_eval(p: &Polynomial, x: f64) -> f64 {
    p.coeffs()
        .iter()
        .enumerate()
        .map(|(i, &c)| c * x.powi(i as i32))
        .sum()
}

/// ULP-scale agreement tolerance: reassociating a degree-`d` sum
/// perturbs each partial by a few eps of the running magnitude.
fn reassociation_tol(p: &Polynomial, x: f64) -> f64 {
    let mag: f64 = p
        .coeffs()
        .iter()
        .enumerate()
        .map(|(i, &c)| (c * x.powi(i as i32)).abs())
        .sum();
    8.0 * (p.degree() as f64 + 2.0) * f64::EPSILON * (1.0 + mag)
}

proptest! {
    /// Polynomial addition commutes and agrees with pointwise addition.
    #[test]
    fn poly_add_pointwise(a in coeffs(), b in coeffs(), x in -2.0f64..2.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let sum = pa.add(&pb);
        prop_assert!((sum.eval(x) - (pa.eval(x) + pb.eval(x))).abs() < 1e-9);
        prop_assert_eq!(pa.add(&pb), pb.add(&pa));
    }

    /// Polynomial multiplication agrees with pointwise multiplication.
    #[test]
    fn poly_mul_pointwise(a in coeffs(), b in coeffs(), x in -2.0f64..2.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let prod = pa.mul(&pb);
        prop_assert!((prod.eval(x) - pa.eval(x) * pb.eval(x)).abs() < 1e-6);
    }

    /// Symbolic composition agrees with functional composition.
    #[test]
    fn poly_compose_pointwise(a in coeffs(), b in coeffs(), x in -1.0f64..1.0) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let comp = pa.compose(&pb);
        prop_assert!((comp.eval(x) - pa.eval(pb.eval(x))).abs() < 1e-4);
    }

    /// Derivative obeys the product rule (checked pointwise).
    #[test]
    fn derivative_product_rule(a in coeffs(), b in coeffs(), x in -1.5f64..1.5) {
        let pa = Polynomial::new(a);
        let pb = Polynomial::new(b);
        let lhs = pa.mul(&pb).derivative().eval(x);
        let rhs = pa.derivative().eval(x) * pb.eval(x) + pa.eval(x) * pb.derivative().eval(x);
        prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
    }

    /// Odd polynomials are odd functions.
    #[test]
    fn odd_polys_are_odd(odd in proptest::collection::vec(-3.0f64..3.0, 1..5), x in -1.0f64..1.0) {
        let p = Polynomial::from_odd(&odd);
        prop_assert!((p.eval(-x) + p.eval(x)).abs() < 1e-9);
    }

    /// relu_via_sign with the *exact* sign recovers exact ReLU.
    #[test]
    fn relu_identity_with_exact_sign(x in -10.0f64..10.0) {
        prop_assert_eq!(relu_via_sign(sign_exact, x), x.max(0.0));
    }

    /// max_via_sign with the exact sign recovers exact max, and is
    /// symmetric in its arguments.
    #[test]
    fn max_identity_with_exact_sign(x in -5.0f64..5.0, y in -5.0f64..5.0) {
        // (x+y) + (x−y) is not exactly 2·max in floats; allow one ulp-ish.
        prop_assert!((max_via_sign(sign_exact, x, y) - x.max(y)).abs() < 1e-12);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let s = |v: f64| paf.eval(v);
        let a = max_via_sign(s, x, y);
        let b = max_via_sign(s, y, x);
        prop_assert!((a - b).abs() < 1e-9, "max not symmetric: {a} vs {b}");
    }

    /// solve_dense actually solves the system (well-conditioned inputs).
    #[test]
    fn solver_residual_small(
        d in proptest::collection::vec(1.0f64..3.0, 3),
        o in proptest::collection::vec(-0.3f64..0.3, 6),
        b in proptest::collection::vec(-5.0f64..5.0, 3),
    ) {
        // Diagonally dominant 3x3.
        let a = [
            d[0], o[0], o[1],
            o[2], d[1], o[3],
            o[4], o[5], d[2],
        ];
        let x = solve_dense(&a, &b, 3).expect("diagonally dominant");
        for i in 0..3 {
            let r: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum::<f64>() - b[i];
            prop_assert!(r.abs() < 1e-8, "residual {r}");
        }
    }

    /// LSQ residual is orthogonal to the basis (normal equations hold).
    #[test]
    fn lsq_normal_equations(seed in 0u64..1000) {
        let xs: Vec<f64> = (0..40).map(|i| -1.0 + i as f64 / 19.5).collect();
        let ys: Vec<f64> = xs.iter().enumerate()
            .map(|(i, &x)| x.tanh() + 0.01 * ((seed as f64 + i as f64).sin()))
            .collect();
        let ws = vec![1.0; xs.len()];
        let fit = weighted_lsq_polyfit(&xs, &ys, &ws, 3, false).expect("solvable");
        for p in 0..=3usize {
            let dot: f64 = xs.iter().zip(&ys)
                .map(|(&x, &y)| (fit.eval(x) - y) * x.powi(p as i32))
                .sum();
            prop_assert!(dot.abs() < 1e-6, "residual not orthogonal to x^{p}: {dot}");
        }
    }

    /// Static-scale folding: paf.with_input_scale(s).eval(x) == paf.eval(s*x).
    #[test]
    fn scale_folding_identity(s in 0.1f64..3.0, x in -1.0f64..1.0) {
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let folded = paf.with_input_scale(s);
        let (a, b) = (folded.eval(x), paf.eval(s * x));
        // Relative tolerance: far outside [-1,1] composite values blow up
        // and powi-vs-Horner rounding differs in the last bits.
        prop_assert!((a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())), "{a} vs {b}");
    }

    /// Every dense engine backend — scalar and batch — agrees with
    /// naive powi evaluation to ULP scale on random degree ≤ 31 inputs.
    #[test]
    fn polyeval_dense_backends_match_naive(
        c in proptest::collection::vec(-3.0f64..3.0, 1..32),
        x in -1.5f64..1.5,
    ) {
        let p = Polynomial::new(c);
        let want = naive_powi_eval(&p, x);
        let tol = reassociation_tol(&p, x);
        for plan in [EvalPlan::DenseHorner, EvalPlan::DenseEstrin, EvalPlan::DensePs] {
            let pe = PolyEval::with_plan(&p, plan);
            let got = pe.eval(x);
            prop_assert!((got - want).abs() <= tol, "{plan:?}: {got} vs {want}");
            // Batch backend must agree at every slice position.
            let xs = [x, -x, 0.5 * x, 0.0, x];
            let out = pe.eval_vec(&xs);
            for (&xi, &oi) in xs.iter().zip(&out) {
                let w = naive_powi_eval(&p, xi);
                prop_assert!(
                    (oi - w).abs() <= reassociation_tol(&p, xi),
                    "{plan:?} batch at {xi}: {oi} vs {w}"
                );
            }
        }
    }

    /// Odd-only inputs: the packed odd backends agree with naive powi
    /// (and with the auto-selected plan) to ULP scale up to degree 31.
    #[test]
    fn polyeval_odd_backends_match_naive(
        odd in proptest::collection::vec(-3.0f64..3.0, 1..17),
        x in -1.5f64..1.5,
    ) {
        let p = Polynomial::from_odd(&odd); // degree ≤ 31, odd terms only
        let want = naive_powi_eval(&p, x);
        let tol = reassociation_tol(&p, x);
        for plan in [EvalPlan::OddHorner, EvalPlan::OddEstrin, EvalPlan::DenseHorner] {
            let pe = PolyEval::with_plan(&p, plan);
            let got = pe.eval(x);
            prop_assert!((got - want).abs() <= tol, "{plan:?}: {got} vs {want}");
        }
        let auto = PolyEval::new(&p);
        prop_assert!(auto.plan().is_odd(), "odd input must pick a packed plan");
        let xs: Vec<f64> = (0..11).map(|i| x * (i as f64 / 10.0)).collect();
        let out = auto.eval_vec(&xs);
        for (&xi, &oi) in xs.iter().zip(&out) {
            let w = naive_powi_eval(&p, xi);
            prop_assert!(
                (oi - w).abs() <= reassociation_tol(&p, xi),
                "auto batch at {xi}: {oi} vs {w}"
            );
        }
    }

    /// The prepared composite engine matches the unprepared composite
    /// on scalars and slices, ReLU construction included.
    #[test]
    fn composite_engine_matches_unprepared(
        odd_a in proptest::collection::vec(-2.0f64..2.0, 1..5),
        odd_b in proptest::collection::vec(-2.0f64..2.0, 1..5),
        x in -1.0f64..1.0,
    ) {
        let paf = CompositePaf::new(vec![
            Polynomial::from_odd(&odd_a),
            Polynomial::from_odd(&odd_b),
        ]);
        let eng = CompositeEval::new(&paf);
        prop_assert!((eng.eval(x) - paf.eval(x)).abs() < 1e-9 * (1.0 + paf.eval(x).abs()));
        prop_assert!((eng.relu(x) - paf.relu(x)).abs() < 1e-9 * (1.0 + paf.relu(x).abs()));
        let xs = [x, -x, 0.3];
        let mut out = [0.0; 3];
        eng.relu_slice(&xs, &mut out);
        for (&xi, &oi) in xs.iter().zip(&out) {
            prop_assert!((oi - paf.relu(xi)).abs() < 1e-9 * (1.0 + oi.abs()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Search candidates report the same depth as their materialised
    /// composite, for arbitrary stage sequences.
    #[test]
    fn search_candidate_depth_consistent(
        picks in proptest::collection::vec(0usize..6, 1..4),
    ) {
        use crate::search::{BaseStage, SearchConfig, enumerate_composites};
        let cfg = SearchConfig { max_stages: 3, samples: 21, ..SearchConfig::default() };
        let all = BaseStage::all();
        let stages: Vec<BaseStage> = picks.iter().map(|&i| all[i]).collect();
        // Find this sequence among the enumeration (if bounded).
        let cands = enumerate_composites(&cfg);
        if let Some(c) = cands.iter().find(|c| c.stages == stages) {
            let paf = c.to_composite();
            prop_assert_eq!(c.depth, paf.mult_depth());
            prop_assert_eq!(c.degree, paf.sum_degree());
        }
    }

    /// The Pareto frontier is dominance-free: no member is beaten on
    /// both axes by any enumerated candidate.
    #[test]
    fn frontier_members_undominated(eps in 0.02f64..0.2) {
        use crate::search::{SearchConfig, enumerate_composites, pareto_frontier};
        let cfg = SearchConfig { eps, max_stages: 2, samples: 41, ..SearchConfig::default() };
        let cands = enumerate_composites(&cfg);
        let front = pareto_frontier(cands.clone());
        for f in &front {
            for c in &cands {
                let dominates = c.depth < f.depth && c.max_error < f.max_error;
                prop_assert!(!dominates, "{} dominated by {}", f.name(), c.name());
            }
        }
    }
}
