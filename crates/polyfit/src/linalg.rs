//! Small dense linear-algebra helpers used by the fitting routines.

use crate::poly::Polynomial;

/// Solves the dense system `A x = b` in place by Gaussian elimination
/// with partial pivoting. `a` is row-major `n`×`n`.
///
/// Returns `None` if the matrix is numerically singular.
///
/// # Panics
///
/// Panics if `a.len() != n*n` or `b.len() != n`.
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix size mismatch");
    assert_eq!(b.len(), n, "rhs size mismatch");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        for row in col + 1..n {
            if m[row * n + col].abs() > m[piv * n + col].abs() {
                piv = row;
            }
        }
        if m[piv * n + col].abs() < 1e-300 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                m.swap(col * n + k, piv * n + k);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for row in col + 1..n {
            let factor = m[row * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for k in row + 1..n {
            s -= m[row * n + k] * x[k];
        }
        x[row] = s / m[row * n + row];
    }
    Some(x)
}

/// Weighted least-squares polynomial fit.
///
/// Finds the degree-`degree` polynomial minimising
/// `sum_i w_i (p(x_i) - y_i)^2` via the normal equations. When
/// `odd_only` is set the basis is restricted to odd powers, which is
/// the right space for sign-function approximants and is much better
/// conditioned.
///
/// This routine is the regression backend of **Coefficient Tuning**:
/// the weights come from the profiled activation distribution of the
/// layer being replaced (paper §4.2 step 3).
///
/// # Panics
///
/// Panics if input lengths differ or no samples are given.
pub fn weighted_lsq_polyfit(
    xs: &[f64],
    ys: &[f64],
    ws: &[f64],
    degree: usize,
    odd_only: bool,
) -> Option<Polynomial> {
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    assert_eq!(xs.len(), ws.len(), "xs/ws length mismatch");
    assert!(!xs.is_empty(), "empty sample set");

    let powers: Vec<usize> = if odd_only {
        (0..=degree).filter(|p| p % 2 == 1).collect()
    } else {
        (0..=degree).collect()
    };
    let nb = powers.len();
    let mut ata = vec![0.0f64; nb * nb];
    let mut atb = vec![0.0f64; nb];
    let mut basis = vec![0.0f64; nb];
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
        for (j, &p) in powers.iter().enumerate() {
            basis[j] = x.powi(p as i32);
        }
        for i in 0..nb {
            let wbi = w * basis[i];
            for j in i..nb {
                ata[i * nb + j] += wbi * basis[j];
            }
            atb[i] += wbi * y;
        }
    }
    // Symmetrise lower triangle.
    for i in 0..nb {
        for j in 0..i {
            ata[i * nb + j] = ata[j * nb + i];
        }
    }
    let sol = solve_dense(&ata, &atb, nb)?;
    let mut coeffs = vec![0.0; degree + 1];
    for (&p, &c) in powers.iter().zip(&sol) {
        coeffs[p] = c;
    }
    Some(Polynomial::new(coeffs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        // x + y = 3 ; 2x - y = 0 -> x=1, y=2
        let a = [1.0, 1.0, 2.0, -1.0];
        let b = [3.0, 0.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&a, &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let x = solve_dense(&a, &[5.0, 7.0], 2).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn lsq_recovers_exact_polynomial() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5]);
        let xs: Vec<f64> = (0..50).map(|i| -1.0 + i as f64 / 24.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| p.eval(x)).collect();
        let ws = vec![1.0; xs.len()];
        let fit = weighted_lsq_polyfit(&xs, &ys, &ws, 2, false).unwrap();
        for (a, b) in fit.coeffs().iter().zip(p.coeffs()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn lsq_odd_only_fits_odd_function() {
        let xs: Vec<f64> = (1..=60).map(|i| i as f64 / 30.0 - 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let ws = vec![1.0; xs.len()];
        let fit = weighted_lsq_polyfit(&xs, &ys, &ws, 5, true).unwrap();
        assert!(fit.is_odd_function());
        for &x in &xs {
            assert!((fit.eval(x) - x.sin()).abs() < 1e-3);
        }
    }

    #[test]
    fn lsq_weights_bias_the_fit() {
        // Fit a constant to two points with asymmetric weights: the
        // result must land nearer the heavier point.
        let fit = weighted_lsq_polyfit(&[0.0, 1.0], &[0.0, 1.0], &[3.0, 1.0], 0, false).unwrap();
        assert!((fit.coeffs()[0] - 0.25).abs() < 1e-12);
    }
}
