//! Certified enclosures for composite PAFs via interval arithmetic.
//!
//! The search module and the sampled `sign_error` measure error on a
//! finite grid; this module produces **certified** bounds instead:
//! interval Horner evaluation encloses a polynomial's image of an
//! interval, composition chains enclosures through the stages, and
//! domain subdivision tightens the result to any desired resolution.
//! This is the rigorous counterpart of the paper's §2.3 "approximation
//! input range" discussion — it proves a PAF stays bounded (no CKKS
//! plaintext blow-up) and bounds its worst-case sign error without
//! trusting a sample grid.

use crate::composite::CompositePaf;
use crate::poly::Polynomial;

/// A closed real interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "non-finite endpoint");
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    pub fn point(x: f64) -> Self {
        Interval::new(x, x)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// True when `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Largest absolute value over the interval.
    pub fn abs_max(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Largest distance of any point of the interval from `y`.
    pub fn max_distance_to(&self, y: f64) -> f64 {
        (self.lo - y).abs().max((self.hi - y).abs())
    }

    fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        Interval::new(
            c.iter().copied().fold(f64::INFINITY, f64::min),
            c.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Enclosure of `x²` (tighter than `self.mul(self)` because the
    /// square is never negative).
    fn square(self) -> Interval {
        if self.lo >= 0.0 {
            Interval::new(self.lo * self.lo, self.hi * self.hi)
        } else if self.hi <= 0.0 {
            Interval::new(self.hi * self.hi, self.lo * self.lo)
        } else {
            Interval::new(0.0, self.abs_max() * self.abs_max())
        }
    }
}

/// Certified enclosure of `p(x)` over the interval `x` via interval
/// Horner on the odd-coefficient form (`p` must be an odd function —
/// every PAF stage is).
///
/// # Panics
///
/// Panics if `p` is not an odd function.
pub fn poly_enclosure(p: &Polynomial, x: Interval) -> Interval {
    packed_enclosure(&pack_stage(p), x)
}

/// Packs one stage's odd coefficients; the constant zero stage (an odd
/// function of degree 0) packs to the empty slice, which encloses to
/// `{0}`.
///
/// # Panics
///
/// Panics if `p` is not an odd function.
fn pack_stage(p: &Polynomial) -> Vec<f64> {
    assert!(p.is_odd_function(), "PAF stages are odd functions");
    if p.degree() == 0 {
        Vec::new()
    } else {
        p.odd_coeffs()
    }
}

/// Interval Horner over packed odd coefficients — the interval twin of
/// the engine's `OddHorner` backend: `p(x) = x · q(x²)`.
fn packed_enclosure(odd: &[f64], x: Interval) -> Interval {
    let x2 = x.square();
    let mut acc = Interval::point(0.0);
    for &c in odd.iter().rev() {
        acc = acc.mul(x2).add(Interval::point(c));
    }
    acc.mul(x)
}

/// Packs every stage's odd coefficients once so subdivision loops do
/// not re-extract them per piece.
fn prepare_schedules(paf: &CompositePaf) -> Vec<Vec<f64>> {
    paf.stages().iter().map(pack_stage).collect()
}

/// Chains prepared per-stage enclosures through a composite.
fn chained_enclosure(packed: &[Vec<f64>], x: Interval) -> Vec<Interval> {
    let mut out = Vec::with_capacity(packed.len() + 1);
    out.push(x);
    let mut cur = x;
    for odd in packed {
        cur = packed_enclosure(odd, cur);
        out.push(cur);
    }
    out
}

/// Chains per-stage enclosures through a composite: returns
/// `[X0 = x, X1 ⊇ s1(X0), ..., XS]`.
pub fn composite_enclosure(paf: &CompositePaf, x: Interval) -> Vec<Interval> {
    chained_enclosure(&prepare_schedules(paf), x)
}

/// Certified upper bound on `max_{x ∈ [eps, 1]} |paf(x) − 1|` by
/// subdividing the domain into `pieces` subintervals and taking the
/// worst enclosure. By odd symmetry the same bound holds on
/// `[−1, −eps]` against −1.
///
/// # Panics
///
/// Panics unless `0 < eps < 1` and `pieces ≥ 1`.
pub fn certified_sign_error(paf: &CompositePaf, eps: f64, pieces: usize) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    assert!(pieces >= 1, "need at least one piece");
    let schedules = prepare_schedules(paf);
    let step = (1.0 - eps) / pieces as f64;
    let mut worst = 0.0f64;
    for i in 0..pieces {
        let lo = eps + i as f64 * step;
        let hi = if i + 1 == pieces { 1.0 } else { lo + step };
        let enc = *chained_enclosure(&schedules, Interval::new(lo, hi))
            .last()
            .expect("non-empty");
        worst = worst.max(enc.max_distance_to(1.0));
    }
    worst
}

/// Certified upper bound on `max_{x ∈ [−1, 1]} |paf(x)|` — the value
/// bound CKKS plaintexts must respect (the search's `value_bound`
/// check, but proven rather than sampled).
pub fn certified_value_bound(paf: &CompositePaf, pieces: usize) -> f64 {
    assert!(pieces >= 1, "need at least one piece");
    let schedules = prepare_schedules(paf);
    // Odd symmetry: bound on [0, 1] suffices.
    let step = 1.0 / pieces as f64;
    let mut worst = 0.0f64;
    for i in 0..pieces {
        let lo = i as f64 * step;
        let hi = if i + 1 == pieces { 1.0 } else { lo + step };
        for enc in chained_enclosure(&schedules, Interval::new(lo, hi)) {
            worst = worst.max(enc.abs_max());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::PafForm;

    #[test]
    fn interval_ops_enclose() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 3.0);
        let s = a.add(b);
        assert!(s.contains(-0.5) && s.contains(5.0));
        let p = a.mul(b);
        assert!(p.contains(-3.0) && p.contains(6.0));
        let sq = a.square();
        assert_eq!(sq.lo, 0.0);
        assert_eq!(sq.hi, 4.0);
    }

    #[test]
    fn poly_enclosure_contains_samples() {
        let p = Polynomial::from_odd(&[1.5, -0.5]); // f1
        let x = Interval::new(0.2, 0.8);
        let enc = poly_enclosure(&p, x);
        for i in 0..=50 {
            let xv = 0.2 + 0.6 * i as f64 / 50.0;
            let y = p.eval(xv);
            assert!(
                enc.lo - 1e-12 <= y && y <= enc.hi + 1e-12,
                "p({xv}) = {y} outside [{}, {}]",
                enc.lo,
                enc.hi
            );
        }
    }

    #[test]
    fn composite_enclosure_contains_trace() {
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let x = Interval::new(0.1, 0.4);
        let encs = composite_enclosure(&paf, x);
        assert_eq!(encs.len(), paf.num_stages() + 1);
        for i in 0..=20 {
            let xv = 0.1 + 0.3 * i as f64 / 20.0;
            let trace = paf.eval_trace(xv);
            for (e, t) in encs.iter().zip(&trace) {
                assert!(e.lo - 1e-12 <= *t && *t <= e.hi + 1e-12);
            }
        }
    }

    #[test]
    fn certified_bound_dominates_sampled_error() {
        for form in PafForm::all() {
            let paf = CompositePaf::from_form(form);
            let sampled = paf.sign_error(0.1, 400);
            let certified = certified_sign_error(&paf, 0.1, 512);
            assert!(
                certified + 1e-12 >= sampled,
                "{form}: certified {certified} < sampled {sampled}"
            );
        }
    }

    #[test]
    fn subdivision_tightens_the_bound() {
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let coarse = certified_sign_error(&paf, 0.1, 4);
        let fine = certified_sign_error(&paf, 0.1, 256);
        assert!(fine <= coarse + 1e-12, "fine {fine} vs coarse {coarse}");
        // And at high resolution it approaches the sampled error.
        let sampled = paf.sign_error(0.1, 400);
        assert!(
            fine <= sampled * 4.0 + 0.05,
            "fine {fine} vs sampled {sampled}"
        );
    }

    #[test]
    fn value_bound_certifies_ckks_safety() {
        // Every *low-degree* form stays within a small constant on
        // [-1, 1] — the property CKKS plaintext encoding relies on.
        // (The 27-degree comparator's degree-13 stages hit interval
        // arithmetic's dependency blow-up; certifying it would need
        // per-stage range subdivision, which the sampled check in
        // `search::score` covers instead.)
        for form in PafForm::smartpaf_set() {
            let paf = CompositePaf::from_form(form);
            let bound = certified_value_bound(&paf, 512);
            assert!(bound < 8.0, "{form}: certified value bound {bound}");
            assert!(bound >= 1.0 - 1e-9, "{form}: sign composites reach 1");
        }
    }

    #[test]
    fn degenerate_interval_is_exact() {
        let p = Polynomial::from_odd(&[2.0, -1.0]);
        let enc = poly_enclosure(&p, Interval::point(0.5));
        assert!((enc.lo - p.eval(0.5)).abs() < 1e-12);
        assert!((enc.hi - p.eval(0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_rejected() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    fn zero_stage_encloses_to_zero() {
        // A constant zero stage is a degenerate but constructible
        // composite; both enclosure entry points must tolerate it.
        let zero = Polynomial::zero();
        let enc = poly_enclosure(&zero, Interval::new(0.1, 1.0));
        assert_eq!(enc.lo, 0.0);
        assert_eq!(enc.hi, 0.0);
        let paf = CompositePaf::new(vec![zero]);
        let encs = composite_enclosure(&paf, Interval::new(0.1, 1.0));
        assert_eq!(encs.len(), 2);
        assert_eq!(encs[1].lo, 0.0);
        assert_eq!(encs[1].hi, 0.0);
    }
}
