//! Polynomial approximation machinery for SMART-PAF.
//!
//! This crate owns everything about **Polynomial Approximated Functions
//! (PAFs)**: the [`Polynomial`] type, composite PAFs built from the
//! Cheon et al. `f`/`g` bases and Lee et al. minimax polynomials, the
//! Remez exchange algorithm used to regenerate the high-degree minimax
//! comparators, weighted least-squares / gradient coefficient tuning
//! (the backend of SMART-PAF's Coefficient Tuning), and CKKS
//! multiplication-depth analysis (paper Tab. 2, Tab. 8, Fig. 10).
//!
//! # Example: approximate ReLU with the 14-degree PAF
//!
//! ```
//! use smartpaf_polyfit::{CompositePaf, PafForm};
//!
//! let paf = CompositePaf::from_form(PafForm::F1SqG1Sq);
//! // relu(x) ~= (x + x * paf(x)) / 2
//! let x = 0.7;
//! let approx = (x + x * paf.eval(x)) / 2.0;
//! assert!((approx - 0.7).abs() < 0.05);
//! ```

mod alpha;
pub mod bounds;
mod cheb;
mod composite;
mod ct;
mod depth;
mod linalg;
pub mod paper_coeffs;
mod poly;
pub mod polyeval;
mod ps;
mod remez;
pub mod search;
mod serde_impls;

pub use alpha::{alpha_composite, AlphaComposite};
pub use bounds::{
    certified_sign_error, certified_value_bound, composite_enclosure, poly_enclosure, Interval,
};
pub use cheb::{chebyshev_fit, chebyshev_nodes};
pub use composite::{
    max_via_sign, quadratic_paf, relu_via_sign, sign_exact, CompositePaf, PafForm, PafSlotKind,
};
pub use ct::{tune_composite, ActivationProfile, TuneConfig, TuneReport};
pub use depth::{poly_mult_depth, DepthStep, DepthTrace};
pub use linalg::{solve_dense, weighted_lsq_polyfit};
pub use poly::Polynomial;
pub use polyeval::{CompositeEval, EvalPlan, OddPowerSchedule, PolyEval};
pub use ps::{ps_eval, ps_plan, squaring_schedule_mults, PsPlan};
pub use remez::{minimax_sign, minimax_sign_composite, RemezReport};
pub use search::{
    enumerate_composites, min_depth_composite, min_depth_under_degree, pareto_frontier, BaseStage,
    Candidate, SearchConfig,
};

#[cfg(test)]
mod proptests;
