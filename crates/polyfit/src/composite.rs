//! Composite PAFs and the sign → ReLU / Max constructions.
//!
//! Notation follows the paper: `f ∘ g` applies `f` **first** and `g`
//! second (Tab. 8: `y = f1(x); g2(y)`), and `f² ∘ g²` means
//! `g(g(f(f(x))))` (Eq. 7).

use crate::depth::poly_mult_depth;
use crate::poly::Polynomial;
use crate::polyeval::{CompositeEval, OddPowerSchedule};
use crate::remez::minimax_sign_composite;
use std::fmt;

/// Exact sign function used as the approximation target:
/// `1` for positive, `-1` for negative, `0` at zero.
pub fn sign_exact(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// `relu(x)` built from a sign approximation: `(x + x·s(x)) / 2`.
pub fn relu_via_sign(sign_of: impl Fn(f64) -> f64, x: f64) -> f64 {
    (x + x * sign_of(x)) / 2.0
}

/// `max(x, y)` built from a sign approximation:
/// `((x+y) + (x−y)·s(x−y)) / 2`.
pub fn max_via_sign(sign_of: impl Fn(f64) -> f64, x: f64, y: f64) -> f64 {
    ((x + y) + (x - y) * sign_of(x - y)) / 2.0
}

/// The six PAF forms evaluated in the paper (Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PafForm {
    /// `f1 ∘ g2` — paper-reported degree 5, depth 5 (cheapest).
    F1G2,
    /// `f2 ∘ g2` — paper-reported degree 10, depth 6.
    F2G2,
    /// `f2 ∘ g3` — paper-reported degree 12, depth 6.
    F2G3,
    /// Lee et al. minimax `α = 7` — two degree-7 stages, depth 6.
    Alpha7,
    /// `f1² ∘ g1²` — the paper's sweet-spot "14-degree" PAF, depth 8.
    F1SqG1Sq,
    /// Lee et al. minimax "27-degree" comparator (`α = 10` column of
    /// Tab. 2): three minimax stages of degrees 7, 7, 13; depth 10.
    /// Regenerated with our own Remez implementation.
    MinimaxDeg27,
}

/// What a PAF slot computes — per-slot candidate enumeration prunes
/// differently for the two ([`CompositePaf::candidate_forms_per_slot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PafSlotKind {
    /// One sign evaluation per activation (`relu(x)` via §5.2).
    Relu,
    /// A pairwise max-fold over the window taps (§5.4.3): every fold
    /// round pays the full sign depth again, per operand.
    MaxPool,
}

/// Depth cap for forms worth offering a maxpool slot: the fold pays
/// the full sign depth per round, so the comparator-class forms
/// (depth ≥ 8) mostly burn bootstraps there — they exist for
/// accuracy-critical ReLU slots.
const MAX_POOL_FORM_DEPTH: usize = 7;

impl PafForm {
    /// All forms, cheapest first (the x-axis order of Fig. 1).
    pub fn all() -> [PafForm; 6] {
        [
            PafForm::F1G2,
            PafForm::F2G2,
            PafForm::F2G3,
            PafForm::Alpha7,
            PafForm::F1SqG1Sq,
            PafForm::MinimaxDeg27,
        ]
    }

    /// The five low-degree forms SMART-PAF trains (Tab. 3 columns).
    pub fn smartpaf_set() -> [PafForm; 5] {
        [
            PafForm::F1SqG1Sq,
            PafForm::Alpha7,
            PafForm::F2G3,
            PafForm::F2G2,
            PafForm::F1G2,
        ]
    }

    /// The degree value the paper reports in Tab. 2 for this form.
    ///
    /// The paper's degree accounting is not self-consistent (see
    /// EXPERIMENTS.md); these are the verbatim published values.
    pub fn paper_reported_degree(&self) -> usize {
        match self {
            PafForm::F1G2 => 5,
            PafForm::F2G2 => 10,
            PafForm::F2G3 => 12,
            PafForm::Alpha7 => 12,
            PafForm::F1SqG1Sq => 14,
            PafForm::MinimaxDeg27 => 27,
        }
    }

    /// Human-readable name matching the paper's notation.
    pub fn paper_name(&self) -> &'static str {
        match self {
            PafForm::F1G2 => "f1∘g2",
            PafForm::F2G2 => "f2∘g2",
            PafForm::F2G3 => "f2∘g3",
            PafForm::Alpha7 => "α=7",
            PafForm::F1SqG1Sq => "f1²∘g1²",
            PafForm::MinimaxDeg27 => "α=10 (27-degree)",
        }
    }

    /// Compact name for dense per-slot tables (form *vectors* list one
    /// name per slot, where [`PafForm::paper_name`]'s long comparator
    /// label would blow the column).
    pub fn short_name(&self) -> &'static str {
        match self {
            PafForm::F1G2 => "f1∘g2",
            PafForm::F2G2 => "f2∘g2",
            PafForm::F2G3 => "f2∘g3",
            PafForm::Alpha7 => "α=7",
            PafForm::F1SqG1Sq => "f1²∘g1²",
            PafForm::MinimaxDeg27 => "α=10",
        }
    }
}

impl fmt::Display for PafForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The AESPA-style quadratic activation expressed as a PAF: a single
/// degree-1 sign stage `p(x) = x` turns the ReLU construction
/// `(x + x·p(x))/2` into `(x + x²)/2` — a Hermite-flavoured quadratic
/// with multiplication depth 2 (the cheapest possible replacement, and
/// the comparison point of the paper's §7 AESPA discussion).
pub fn quadratic_paf() -> CompositePaf {
    CompositePaf::new(vec![Polynomial::from_odd(&[1.0])])
}

/// Cheon et al. base `f1(x) = (3x − x³)/2`.
pub(crate) fn base_f1() -> Polynomial {
    Polynomial::from_odd(&[1.5, -0.5])
}

/// Cheon et al. base `f2(x) = (15x − 10x³ + 3x⁵)/8`.
pub(crate) fn base_f2() -> Polynomial {
    Polynomial::from_odd(&[1.875, -1.25, 0.375])
}

/// Cheon et al. base `g1(x) = (2126x − 1359x³)/2¹⁰`.
pub(crate) fn base_g1() -> Polynomial {
    Polynomial::from_odd(&[2126.0 / 1024.0, -1359.0 / 1024.0])
}

/// Cheon et al. base `g2(x) = (3334x − 6108x³ + 3796x⁵)/2¹⁰`.
pub(crate) fn base_g2() -> Polynomial {
    Polynomial::from_odd(&[3334.0 / 1024.0, -6108.0 / 1024.0, 3796.0 / 1024.0])
}

/// Cheon et al. base `g3(x) = (4589x − 16577x³ + 25614x⁵ − 12860x⁷)/2¹⁰`.
pub(crate) fn base_g3() -> Polynomial {
    Polynomial::from_odd(&[
        4589.0 / 1024.0,
        -16577.0 / 1024.0,
        25614.0 / 1024.0,
        -12860.0 / 1024.0,
    ])
}

/// A sign-approximating composite PAF: a sequence of odd polynomial
/// stages applied first-to-last.
///
/// # Example
///
/// ```
/// use smartpaf_polyfit::{CompositePaf, PafForm};
///
/// let paf = CompositePaf::from_form(PafForm::Alpha7);
/// assert_eq!(paf.num_stages(), 2);
/// assert!((paf.eval(0.5) - 1.0).abs() < 0.05);
/// assert!((paf.eval(-0.5) + 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompositePaf {
    stages: Vec<Polynomial>,
    form: Option<PafForm>,
}

impl CompositePaf {
    /// Builds a composite from explicit stages (applied in order).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Polynomial>) -> Self {
        assert!(!stages.is_empty(), "composite needs at least one stage");
        CompositePaf { stages, form: None }
    }

    /// Builds one of the paper's PAF forms with its published
    /// (pre-Coefficient-Tuning) baseline coefficients.
    pub fn from_form(form: PafForm) -> Self {
        let stages = match form {
            PafForm::F1G2 => vec![base_f1(), base_g2()],
            PafForm::F2G2 => vec![base_f2(), base_g2()],
            PafForm::F2G3 => vec![base_f2(), base_g3()],
            PafForm::Alpha7 => vec![
                Polynomial::from_odd(&[7.304451, -34.68258667, 59.85965347, -31.87552261]),
                Polynomial::from_odd(&[2.400856, -2.631254435, 1.549126744, -0.331172943]),
            ],
            PafForm::F1SqG1Sq => vec![base_f1(), base_f1(), base_g1(), base_g1()],
            PafForm::MinimaxDeg27 => minimax_sign_composite(&[4, 4, 7], 0.02)
                .into_iter()
                .map(|r| r.poly)
                .collect(),
        };
        CompositePaf {
            stages,
            form: Some(form),
        }
    }

    /// The form this composite was constructed from, if any.
    pub fn form(&self) -> Option<PafForm> {
        self.form
    }

    /// Restores the form tag on a composite rebuilt from explicit
    /// stages (deserialization reconstructs via [`CompositePaf::new`],
    /// which cannot know the provenance of its stages).
    pub(crate) fn set_form(&mut self, form: Option<PafForm>) {
        self.form = form;
    }

    /// The stages, applied first-to-last.
    pub fn stages(&self) -> &[Polynomial] {
        &self.stages
    }

    /// Mutable stage access (Coefficient Tuning edits these in place).
    pub fn stages_mut(&mut self) -> &mut [Polynomial] {
        &mut self.stages
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Evaluates the composite at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.stages.iter().fold(x, |acc, p| p.eval(acc))
    }

    /// Evaluates and also returns every intermediate stage input
    /// `[z0=x, z1, ..., zS]` — the forward tape Coefficient Tuning
    /// differentiates through.
    pub fn eval_trace(&self, x: f64) -> Vec<f64> {
        let mut zs = Vec::with_capacity(self.stages.len() + 1);
        zs.push(x);
        for p in &self.stages {
            let z = *zs.last().expect("non-empty trace");
            zs.push(p.eval(z));
        }
        zs
    }

    /// ReLU approximation `(x + x·paf(x))/2`.
    pub fn relu(&self, x: f64) -> f64 {
        relu_via_sign(|v| self.eval(v), x)
    }

    /// Max approximation `((x+y) + (x−y)·paf(x−y))/2`.
    pub fn max(&self, x: f64, y: f64) -> f64 {
        max_via_sign(|v| self.eval(v), x, y)
    }

    /// CKKS multiplication depth: sum over stages of
    /// `ceil(log2(degree+1))` (paper App. C).
    pub fn mult_depth(&self) -> usize {
        self.stages
            .iter()
            .map(|p| poly_mult_depth(p.degree()))
            .sum()
    }

    /// Sum of stage degrees — the paper's "27-degree" style count.
    pub fn sum_degree(&self) -> usize {
        self.stages.iter().map(Polynomial::degree).sum()
    }

    /// True polynomial degree of the expanded composition.
    pub fn composed_degree(&self) -> usize {
        self.stages.iter().map(Polynomial::degree).product()
    }

    /// Prepares the evaluation engine for this composite: one packed
    /// [`crate::PolyEval`] plan per stage. Use this on hot paths that
    /// evaluate the same composite many times (batch ReLU, error
    /// grids).
    pub fn prepare(&self) -> CompositeEval {
        CompositeEval::new(self)
    }

    /// Number of ciphertext-ciphertext multiplications needed to
    /// evaluate all stages with the odd power basis
    /// (per stage: powers x², x³, then x⁵, x⁷, ... plus products).
    ///
    /// This is the latency-dominating count under CKKS; the per-stage
    /// model lives in [`OddPowerSchedule::modelled_ct_mults`].
    pub fn ct_mult_count(&self) -> usize {
        self.stages
            .iter()
            .map(|p| {
                if p.degree() == 0 {
                    0
                } else {
                    OddPowerSchedule::new(p).modelled_ct_mults()
                }
            })
            .sum()
    }

    /// Exact ciphertext-ciphertext multiplication count of evaluating
    /// all stages with the even-power-ladder schedule
    /// ([`OddPowerSchedule::exact_ct_mults`] summed) — the number the
    /// trace execution backend records per PAF stage.
    pub fn exact_ct_mult_count(&self) -> usize {
        self.stages
            .iter()
            .map(|p| {
                if p.degree() == 0 {
                    0
                } else {
                    OddPowerSchedule::new(p).exact_ct_mults()
                }
            })
            .sum()
    }

    /// Enumerates the built-in candidate forms (Tab. 2) whose PAF-ReLU
    /// fits a modulus chain of `max_levels` rescale levels — i.e.
    /// `mult_depth() + 1 ≤ max_levels`, the sign evaluation plus the
    /// ReLU product. Returned cheapest-first (the Fig. 1 x-axis
    /// order), so planners can iterate and stop at the first feasible
    /// candidate or trace-price the whole set.
    pub fn candidate_forms(max_levels: usize) -> Vec<PafForm> {
        PafForm::all()
            .into_iter()
            .filter(|&f| CompositePaf::from_form(f).mult_depth() < max_levels)
            .collect()
    }

    /// Per-slot candidate enumeration: one candidate list per PAF slot,
    /// pruned by what the slot computes. ReLU slots get the full
    /// [`CompositePaf::candidate_forms`] set for the chain; maxpool
    /// slots drop the deep comparator-class forms (depth above
    /// `MAX_POOL_FORM_DEPTH`), whose per-fold-round sign cost mostly
    /// burns bootstraps in a pairwise fold. The per-slot shape is what
    /// planners search *form vectors* over (the paper's per-layer
    /// replacement tables pick a different form per slot). Should
    /// pruning ever empty a maxpool list (it cannot with the built-in
    /// six), the slot falls back to the shared set so every slot stays
    /// plannable.
    pub fn candidate_forms_per_slot(max_levels: usize, kinds: &[PafSlotKind]) -> Vec<Vec<PafForm>> {
        let shared = CompositePaf::candidate_forms(max_levels);
        kinds
            .iter()
            .map(|kind| match kind {
                PafSlotKind::Relu => shared.clone(),
                PafSlotKind::MaxPool => {
                    let pruned: Vec<PafForm> = shared
                        .iter()
                        .copied()
                        .filter(|&f| CompositePaf::from_form(f).mult_depth() <= MAX_POOL_FORM_DEPTH)
                        .collect();
                    if pruned.is_empty() {
                        shared.clone()
                    } else {
                        pruned
                    }
                }
            })
            .collect()
    }

    /// Folds a static input scale into the first stage:
    /// evaluating the result at `x` equals evaluating `self` at `s·x`.
    pub fn with_input_scale(&self, s: f64) -> CompositePaf {
        let mut stages = self.stages.clone();
        stages[0] = stages[0].substitute_scaled_input(s);
        CompositePaf {
            stages,
            form: self.form,
        }
    }

    /// Max |paf(x) − sign(x)| over `[-1, -eps] ∪ [eps, 1]`.
    ///
    /// Prepares the evaluation engine once and sweeps both half-grids
    /// through the batch backend.
    pub fn sign_error(&self, eps: f64, samples: usize) -> f64 {
        let eng = self.prepare();
        let xs: Vec<f64> = (0..samples)
            .map(|i| eps + (1.0 - eps) * i as f64 / (samples - 1) as f64)
            .collect();
        let mut out = vec![0.0; samples];
        eng.eval_slice(&xs, &mut out);
        // paf(-x) = -paf(x) for odd stages, so |paf(-x) + 1| = |paf(x) - 1|
        // only when the composite is odd; evaluate the negative half
        // explicitly to keep the contract for arbitrary stages.
        let neg: Vec<f64> = xs.iter().map(|&x| -x).collect();
        let mut out_neg = vec![0.0; samples];
        eng.eval_slice(&neg, &mut out_neg);
        out.iter()
            .map(|&v| (v - 1.0).abs())
            .chain(out_neg.iter().map(|&v| (v + 1.0).abs()))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for CompositePaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.form {
            Some(form) => write!(f, "CompositePaf({form})"),
            None => write!(f, "CompositePaf({} stages)", self.stages.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_fix_unit_points() {
        // f-bases satisfy f(1)=1, f(-1)=-1 (Cheon et al. closed form).
        for f in [base_f1(), base_f2()] {
            assert!((f.eval(1.0) - 1.0).abs() < 1e-12);
            assert!((f.eval(-1.0) + 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_forms_approximate_sign() {
        for form in PafForm::all() {
            let paf = CompositePaf::from_form(form);
            // Mid-domain values should be close to ±1.
            let e = (paf.eval(0.6) - 1.0)
                .abs()
                .max((paf.eval(-0.6) + 1.0).abs());
            assert!(e < 0.25, "{form}: error {e}");
        }
    }

    #[test]
    fn depth_matches_paper_table2() {
        let expect = [
            (PafForm::MinimaxDeg27, 10),
            (PafForm::F1SqG1Sq, 8),
            (PafForm::Alpha7, 6),
            (PafForm::F2G3, 6),
            (PafForm::F2G2, 6),
            (PafForm::F1G2, 5),
        ];
        for (form, d) in expect {
            let paf = CompositePaf::from_form(form);
            assert_eq!(paf.mult_depth(), d, "{form}");
        }
    }

    #[test]
    fn deg27_comparator_sums_to_27() {
        let paf = CompositePaf::from_form(PafForm::MinimaxDeg27);
        assert_eq!(paf.sum_degree(), 27);
        assert_eq!(paf.num_stages(), 3);
    }

    #[test]
    fn relu_construction_accuracy() {
        let paf = CompositePaf::from_form(PafForm::F1SqG1Sq);
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            assert!(
                (paf.relu(x) - x).abs() < 0.05,
                "relu({x}) = {}",
                paf.relu(x)
            );
            assert!(paf.relu(-x).abs() < 0.05, "relu({}) = {}", -x, paf.relu(-x));
        }
    }

    #[test]
    fn max_construction_accuracy() {
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let cases = [(0.3, 0.7), (-0.4, 0.2), (0.5, -0.5), (-0.2, -0.9)];
        for (x, y) in cases {
            let approx = paf.max(x, y);
            let exact = f64::max(x, y);
            assert!((approx - exact).abs() < 0.06, "max({x},{y}) = {approx}");
        }
    }

    #[test]
    fn relu_via_exact_sign_is_exact() {
        for i in -10..=10 {
            let x = i as f64 / 5.0;
            assert_eq!(relu_via_sign(sign_exact, x), x.max(0.0));
        }
    }

    #[test]
    fn max_via_exact_sign_is_exact() {
        assert_eq!(max_via_sign(sign_exact, 2.0, -3.0), 2.0);
        assert_eq!(max_via_sign(sign_exact, -1.0, 4.0), 4.0);
        assert_eq!(max_via_sign(sign_exact, 1.5, 1.5), 1.5);
    }

    #[test]
    fn eval_trace_consistent() {
        let paf = CompositePaf::from_form(PafForm::F2G3);
        let zs = paf.eval_trace(0.4);
        assert_eq!(zs.len(), 3);
        assert_eq!(zs[0], 0.4);
        assert!((zs[2] - paf.eval(0.4)).abs() < 1e-15);
    }

    #[test]
    fn input_scale_folding() {
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let scaled = paf.with_input_scale(0.5);
        for i in -5..=5 {
            let x = i as f64 / 5.0;
            assert!((scaled.eval(x) - paf.eval(0.5 * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_depth_forms_are_more_accurate() {
        let cheap = CompositePaf::from_form(PafForm::F1G2).sign_error(0.05, 500);
        let mid = CompositePaf::from_form(PafForm::F1SqG1Sq).sign_error(0.05, 500);
        let rich = CompositePaf::from_form(PafForm::MinimaxDeg27).sign_error(0.05, 500);
        assert!(rich < mid, "27-deg {rich} !< 14-deg {mid}");
        assert!(mid < cheap, "14-deg {mid} !< f1g2 {cheap}");
    }

    #[test]
    fn candidate_enumeration_respects_depth_budget() {
        // A 12-level chain fits every form (deepest ReLU needs 11).
        assert_eq!(CompositePaf::candidate_forms(12).len(), 6);
        // 8 levels drop the depth-8 and depth-10 forms.
        let eight = CompositePaf::candidate_forms(8);
        assert!(!eight.contains(&PafForm::MinimaxDeg27));
        assert!(!eight.contains(&PafForm::F1SqG1Sq));
        assert_eq!(eight.len(), 4);
        // Below the cheapest form's 6 levels nothing fits.
        assert!(CompositePaf::candidate_forms(5).is_empty());
        // Cheapest-first ordering is preserved.
        assert_eq!(eight[0], PafForm::F1G2);
    }

    #[test]
    fn per_slot_enumeration_prunes_by_slot_kind() {
        // On a 12-level chain the ReLU slot sees all six forms but the
        // maxpool slot drops the depth-8/10 comparator-class forms —
        // the per-kind lists genuinely differ.
        let kinds = [PafSlotKind::Relu, PafSlotKind::MaxPool];
        let per_slot = CompositePaf::candidate_forms_per_slot(12, &kinds);
        assert_eq!(per_slot.len(), 2);
        assert_eq!(per_slot[0], CompositePaf::candidate_forms(12));
        assert_ne!(per_slot[0], per_slot[1], "per-kind lists must differ");
        assert_eq!(
            per_slot[1],
            vec![PafForm::F1G2, PafForm::F2G2, PafForm::F2G3, PafForm::Alpha7]
        );
        // Every pruned list is a subset of the shared set, so any
        // vector drawn from it is still a valid plan candidate.
        assert!(per_slot[1].iter().all(|f| per_slot[0].contains(f)));

        // On an 8-level chain the depth filter already removed the
        // deep forms, so both kinds see the same four — pruning never
        // empties a maxpool slot.
        let eight = CompositePaf::candidate_forms_per_slot(8, &kinds);
        assert_eq!(eight[0], eight[1]);
        assert_eq!(eight[1], CompositePaf::candidate_forms(8));

        assert!(CompositePaf::candidate_forms_per_slot(12, &[]).is_empty());
    }

    #[test]
    fn smartpaf_set_excludes_comparator() {
        assert!(!PafForm::smartpaf_set().contains(&PafForm::MinimaxDeg27));
    }
    #[test]
    fn quadratic_paf_is_half_x_plus_x_squared() {
        let q = quadratic_paf();
        assert_eq!(q.mult_depth(), 1);
        assert_eq!(q.num_stages(), 1);
        for &x in &[-1.0f64, -0.4, 0.0, 0.3, 1.0] {
            let want = 0.5 * (x + x * x);
            assert!((q.relu(x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn quadratic_paf_is_shallowest_form() {
        // Depth 1 sign + 1 ReLU product = 2 levels, below every Tab. 2
        // form (the cheapest f1∘g2 needs 5 + 1).
        let q = quadratic_paf();
        for form in PafForm::all() {
            assert!(q.mult_depth() < CompositePaf::from_form(form).mult_depth());
        }
    }
}
