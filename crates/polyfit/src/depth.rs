//! CKKS multiplication-depth accounting (paper App. C, Tab. 8, Fig. 10).
//!
//! Under leveled CKKS every ciphertext-ciphertext multiplication (plus
//! rescale) consumes one level. Evaluating a degree-`n` polynomial with
//! exponentiation-by-squaring needs `ceil(log2(n+1))` levels; a
//! composite needs the sum over its stages.

use std::fmt;

/// Multiplication depth of a single degree-`deg` polynomial:
/// `ceil(log2(deg + 1))`.
pub fn poly_mult_depth(deg: usize) -> usize {
    let target = deg + 1;
    let mut depth = 0;
    let mut reach = 1usize;
    while reach < target {
        reach *= 2;
        depth += 1;
    }
    depth
}

/// One row of the Tab. 8 walkthrough: which intermediate values become
/// available at a given depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthStep {
    /// Depth level (0 = fresh ciphertext).
    pub depth: usize,
    /// Human-readable intermediate variables, e.g. `"c3*x, x^2"`.
    pub variables: Vec<String>,
}

/// A symbolic depth trace of a composite PAF evaluation, reproducing
/// the structure of paper Tab. 8 / Fig. 10.
#[derive(Debug, Clone)]
pub struct DepthTrace {
    steps: Vec<DepthStep>,
    total_depth: usize,
}

impl DepthTrace {
    /// Builds the depth trace for a composite with the given stage
    /// degrees (e.g. `[3, 5]` for `f1 ∘ g2`).
    ///
    /// # Panics
    ///
    /// Panics if `stage_degrees` is empty or a stage has degree 0.
    pub fn for_stage_degrees(stage_degrees: &[usize]) -> DepthTrace {
        assert!(!stage_degrees.is_empty(), "no stages");
        let mut steps = vec![DepthStep {
            depth: 0,
            variables: vec!["c, x".to_string()],
        }];
        let mut depth = 0;
        for (s, &deg) in stage_degrees.iter().enumerate() {
            assert!(deg > 0, "stage degree must be positive");
            let var = if s == 0 {
                "x".to_string()
            } else {
                format!("y{s}")
            };
            let d_stage = poly_mult_depth(deg);
            // Exponentiation by squaring: after k levels the highest
            // power of this stage's variable is 2^k.
            for k in 1..=d_stage {
                depth += 1;
                let pow = 1usize << k;
                let reached = pow.min(deg);
                let label = if k == d_stage {
                    format!("{var}^{reached} -> stage {s} output")
                } else {
                    format!("{var}^{pow}")
                };
                steps.push(DepthStep {
                    depth,
                    variables: vec![label],
                });
            }
        }
        DepthTrace {
            steps,
            total_depth: depth,
        }
    }

    /// The trace rows.
    pub fn steps(&self) -> &[DepthStep] {
        &self.steps
    }

    /// Total levels consumed.
    pub fn total_depth(&self) -> usize {
        self.total_depth
    }
}

impl fmt::Display for DepthTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(f, "depth {:>2}: {}", s.depth, s.variables.join(", "))?;
        }
        write!(f, "total multiplication depth: {}", self.total_depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_formula_known_values() {
        // ceil(log2(deg+1))
        assert_eq!(poly_mult_depth(1), 1);
        assert_eq!(poly_mult_depth(2), 2);
        assert_eq!(poly_mult_depth(3), 2);
        assert_eq!(poly_mult_depth(5), 3);
        assert_eq!(poly_mult_depth(7), 3);
        assert_eq!(poly_mult_depth(13), 4);
        assert_eq!(poly_mult_depth(15), 4);
        assert_eq!(poly_mult_depth(27), 5);
    }

    #[test]
    fn f1_g2_trace_matches_paper_tab8() {
        // f1 ∘ g2: degrees [3, 5] -> depth 2 + 3 = 5 (paper Tab. 2/8).
        let trace = DepthTrace::for_stage_degrees(&[3, 5]);
        assert_eq!(trace.total_depth(), 5);
    }

    #[test]
    fn comparator_trace_depth_ten() {
        let trace = DepthTrace::for_stage_degrees(&[7, 7, 13]);
        assert_eq!(trace.total_depth(), 10);
    }

    #[test]
    fn trace_depths_monotone() {
        let trace = DepthTrace::for_stage_degrees(&[3, 3, 3, 3]);
        assert_eq!(trace.total_depth(), 8); // f1²∘g1²
        let mut prev = 0;
        for s in trace.steps().iter().skip(1) {
            assert_eq!(s.depth, prev + 1);
            prev = s.depth;
        }
    }

    #[test]
    fn display_mentions_total() {
        let s = format!("{}", DepthTrace::for_stage_degrees(&[3, 5]));
        assert!(s.contains("total multiplication depth: 5"), "{s}");
    }
}
