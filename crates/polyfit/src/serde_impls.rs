//! Serde wire formats for the PAF types the plan registry persists.
//!
//! Formats are documented field-by-field in `docs/ARTIFACT_FORMAT.md`
//! at the repository root:
//!
//! - [`Polynomial`] ⇄ a JSON array of ascending coefficients.
//! - [`PafForm`] ⇄ a stable ASCII tag string ([`PafForm::tag`]), not
//!   the unicode display name, so artifacts stay grep-able and the
//!   display names stay free to change.
//! - [`CompositePaf`] ⇄ `{"form": tag|null, "stages": [[...], ...]}` —
//!   the stage coefficients always travel, so a tuned composite whose
//!   coefficients have drifted from its form's published baseline
//!   round-trips exactly.

use crate::composite::CompositePaf;
use crate::poly::Polynomial;
use crate::PafForm;
use serde::{Deserialize, Error, Serialize, Value};

impl PafForm {
    /// Stable ASCII identifier used in serialized artifacts. Unlike
    /// [`PafForm::paper_name`] these tags are a compatibility
    /// surface: changing one invalidates stored plans.
    ///
    /// # Example
    ///
    /// ```
    /// use smartpaf_polyfit::PafForm;
    ///
    /// assert_eq!(PafForm::F1SqG1Sq.tag(), "f1sq_g1sq");
    /// assert_eq!(PafForm::from_tag("f1sq_g1sq"), Some(PafForm::F1SqG1Sq));
    /// assert_eq!(PafForm::from_tag("nope"), None);
    /// ```
    pub fn tag(&self) -> &'static str {
        match self {
            PafForm::F1G2 => "f1_g2",
            PafForm::F2G2 => "f2_g2",
            PafForm::F2G3 => "f2_g3",
            PafForm::Alpha7 => "alpha7",
            PafForm::F1SqG1Sq => "f1sq_g1sq",
            PafForm::MinimaxDeg27 => "minimax_deg27",
        }
    }

    /// Inverse of [`PafForm::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: &str) -> Option<PafForm> {
        PafForm::all().into_iter().find(|f| f.tag() == tag)
    }
}

impl Serialize for PafForm {
    fn serialize(&self) -> Value {
        Value::Str(self.tag().to_string())
    }
}

impl Deserialize for PafForm {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let tag = value
            .as_str()
            .ok_or_else(|| Error::type_mismatch("PAF form tag", value))?;
        PafForm::from_tag(tag).ok_or_else(|| Error::custom(format!("unknown PAF form tag `{tag}`")))
    }
}

impl Serialize for Polynomial {
    fn serialize(&self) -> Value {
        self.coeffs().to_vec().serialize()
    }
}

impl Deserialize for Polynomial {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let coeffs = Vec::<f64>::deserialize(value)?;
        if coeffs.is_empty() {
            return Err(Error::custom("polynomial needs at least one coefficient"));
        }
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(Error::custom("polynomial coefficients must be finite"));
        }
        Ok(Polynomial::new(coeffs))
    }
}

impl Serialize for CompositePaf {
    fn serialize(&self) -> Value {
        Value::object([
            ("form", self.form().serialize()),
            ("stages", self.stages().to_vec().serialize()),
        ])
    }
}

impl Deserialize for CompositePaf {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let form = Option::<PafForm>::deserialize(value.req("form")?)?;
        let stages = Vec::<Polynomial>::deserialize(value.req("stages")?)?;
        if stages.is_empty() {
            return Err(Error::custom("composite needs at least one stage"));
        }
        let mut paf = CompositePaf::new(stages);
        paf.set_form(form);
        Ok(paf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::json;

    #[test]
    fn form_tags_round_trip_and_stay_unique() {
        let mut seen = std::collections::HashSet::new();
        for form in PafForm::all() {
            assert!(seen.insert(form.tag()), "duplicate tag {}", form.tag());
            assert_eq!(PafForm::from_tag(form.tag()), Some(form));
            let v = form.serialize();
            assert_eq!(PafForm::deserialize(&v).unwrap(), form);
        }
    }

    #[test]
    fn polynomial_round_trips_bit_exact() {
        let p = Polynomial::from_odd(&[2126.0 / 1024.0, -1359.0 / 1024.0]);
        let text = json::to_string(&p.serialize());
        let back = Polynomial::deserialize(&json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        for (a, b) in back.coeffs().iter().zip(p.coeffs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn composite_round_trips_with_and_without_form() {
        for paf in [
            CompositePaf::from_form(PafForm::MinimaxDeg27),
            CompositePaf::new(vec![Polynomial::from_odd(&[1.5, -0.5])]),
            CompositePaf::from_form(PafForm::F1G2).with_input_scale(0.25),
        ] {
            let text = json::to_string(&paf.serialize());
            let back = CompositePaf::deserialize(&json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, paf);
            assert_eq!(back.form(), paf.form());
        }
    }

    #[test]
    fn malformed_composites_are_rejected() {
        for bad in [
            r#"{"form":"f1_g2"}"#,
            r#"{"form":"bogus","stages":[[0.0,1.0]]}"#,
            r#"{"form":null,"stages":[]}"#,
            r#"{"form":null,"stages":[[]]}"#,
            "[1,2,3]",
        ] {
            let v = json::from_str(bad).unwrap();
            assert!(CompositePaf::deserialize(&v).is_err(), "{bad}");
        }
    }
}
