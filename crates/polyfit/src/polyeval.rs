//! The unified polynomial-evaluation engine.
//!
//! Every plaintext consumer of a [`Polynomial`] used to re-decide
//! dense-vs-odd Horner at each call site (and the odd path paid a
//! `skip(1).step_by(2).rev()` iterator chain per call). This module
//! centralises that decision behind a prepared plan:
//!
//! - [`EvalPlan`] names the backend: dense or odd-packed Horner,
//!   Estrin's log-depth splitting, or Paterson–Stockmeyer baby/giant
//!   steps. [`EvalPlan::select`] picks one from the polynomial's
//!   symmetry and degree.
//! - [`PolyEval`] packs the coefficient vector once (odd coefficients
//!   extracted up front for odd functions) and offers scalar
//!   ([`PolyEval::eval`]) and batch ([`PolyEval::eval_slice`])
//!   evaluation. The batch path runs a fixed-width lane loop — for
//!   every backend, Horner and Estrin / Paterson–Stockmeyer alike — so
//!   per-element dependency chains interleave across `LANES`
//!   explicit accumulators.
//! - [`OddPowerSchedule`] is the ciphertext-side twin: the packed odd
//!   coefficients plus the even-power-ladder shape that
//!   `smartpaf-ckks`'s `PafEvaluator` and cost model both consume.
//! - [`CompositeEval`] prepares one plan per stage of a
//!   [`CompositePaf`] and exposes composite / ReLU / max evaluation
//!   over scalars and slices.

use crate::composite::CompositePaf;
use crate::poly::Polynomial;
use crate::ps::ps_plan;

/// Width of the batch lane loop in [`PolyEval::eval_slice`]. Eight
/// independent accumulators are enough for the FMA latency×throughput
/// product on current x86/aarch64 cores.
const LANES: usize = 8;

/// Packed length at which Estrin's shorter dependency chain starts to
/// pay for its extra squarings on the odd path. Re-calibrated for the
/// explicit-lane batch loop (`calibrate_thresholds` harness, x86-64):
/// eight interleaved Horner chains hide FMA latency so thoroughly that
/// batched Horner beats batched Estrin at every measured size, and
/// scalar Horner holds through packed 48 (33 vs 37 ns/point). From
/// packed 64 the scalar chain's latency dominates (Estrin 42 vs Horner
/// 53 ns/point), so the odd plans switch there. Every PAF stage in the
/// paper stays far below this (packed ≤ 14).
const ESTRIN_MIN_PACKED: usize = 64;

/// Packed length at which Paterson–Stockmeyer's baby/giant blocks take
/// over on the dense path. Re-calibrated alongside the lane loop: PS
/// wins batch from packed 64 (12.2 vs Horner 13.4 / Estrin 17.5
/// ns/point) and scalar from 96, so dense selection now goes straight
/// Horner → PS and `DenseEstrin` remains an explicit-plan backend only
/// (the lane interleave subsumes its depth advantage below 64, PS wins
/// above).
const PS_MIN_PACKED: usize = 64;

/// The evaluation strategy a [`PolyEval`] was prepared with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPlan {
    /// Horner over the full ascending coefficient vector.
    DenseHorner,
    /// Horner in `y = x²` over the packed odd coefficients, then one
    /// multiply by `x`. Roughly halves the multiply count for the
    /// odd sign bases (paper App. B).
    OddHorner,
    /// Estrin's scheme over the full coefficient vector: pairwise
    /// combine with `x`, `x²`, `x⁴`, … in `ceil(log2(n))` rounds.
    DenseEstrin,
    /// Estrin's scheme in `y = x²` over the packed odd coefficients.
    OddEstrin,
    /// Paterson–Stockmeyer baby-step/giant-step blocks over the full
    /// coefficient vector (the schedule [`crate::ps_plan`] describes).
    DensePs,
}

impl EvalPlan {
    /// Picks the backend for a polynomial: odd functions use the
    /// packed-odd plans, and Estrin / Paterson–Stockmeyer take over
    /// from Horner once the packed vector grows past the latency
    /// break-even points.
    pub fn select(p: &Polynomial) -> EvalPlan {
        let odd = p.is_odd_function() && p.degree() >= 1;
        let packed = if odd {
            p.degree().div_ceil(2)
        } else {
            p.degree() + 1
        };
        match (odd, packed) {
            (true, n) if n < ESTRIN_MIN_PACKED => EvalPlan::OddHorner,
            (true, _) => EvalPlan::OddEstrin,
            (false, n) if n < ESTRIN_MIN_PACKED => EvalPlan::DenseHorner,
            (false, n) if n < PS_MIN_PACKED => EvalPlan::DenseEstrin,
            (false, _) => EvalPlan::DensePs,
        }
    }

    /// True for the plans that evaluate in `y = x²` over packed odd
    /// coefficients.
    pub fn is_odd(self) -> bool {
        matches!(self, EvalPlan::OddHorner | EvalPlan::OddEstrin)
    }
}

/// A prepared evaluation plan for one polynomial: coefficients packed
/// once, backend fixed, no per-call allocation on the Horner paths.
///
/// # Example
///
/// ```
/// use smartpaf_polyfit::{EvalPlan, PolyEval, Polynomial};
///
/// let p = Polynomial::from_odd(&[1.5, -0.5]); // f1
/// let pe = PolyEval::new(&p);
/// assert_eq!(pe.plan(), EvalPlan::OddHorner);
/// assert_eq!(pe.eval(1.0), 1.0);
///
/// let xs = [-1.0, 0.0, 0.5, 1.0];
/// let mut out = [0.0; 4];
/// pe.eval_slice(&xs, &mut out);
/// assert_eq!(out[3], 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PolyEval {
    /// Dense ascending coefficients, or odd-packed (`packed[i]`
    /// multiplies `x^(2i+1)`) for the odd plans.
    packed: Vec<f64>,
    plan: EvalPlan,
    degree: usize,
}

impl PolyEval {
    /// Prepares a polynomial with the auto-selected plan.
    pub fn new(p: &Polynomial) -> Self {
        Self::with_plan(p, EvalPlan::select(p))
    }

    /// Prepares a polynomial with an explicit plan.
    ///
    /// # Panics
    ///
    /// Panics if an odd plan is requested for a non-odd polynomial.
    pub fn with_plan(p: &Polynomial, plan: EvalPlan) -> Self {
        let packed = if plan.is_odd() {
            assert!(
                p.is_odd_function(),
                "odd evaluation plan on a non-odd polynomial"
            );
            p.odd_coeffs()
        } else {
            p.coeffs().to_vec()
        };
        PolyEval {
            packed,
            plan,
            degree: p.degree(),
        }
    }

    /// The backend this plan was prepared with.
    pub fn plan(&self) -> EvalPlan {
        self.plan
    }

    /// Degree of the prepared polynomial.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The packed coefficient vector (dense ascending, or odd-packed
    /// for the odd plans).
    pub fn packed_coeffs(&self) -> &[f64] {
        &self.packed
    }

    /// `f64` multiplications one scalar evaluation executes — the
    /// plaintext cost model the micro-benchmarks assert against. The
    /// Horner counts include the bootstrap `0·x` fma the uniform
    /// internal Horner loop performs (one per chain), so the model
    /// matches the instruction stream, not the algebraic minimum.
    pub fn mults_per_eval(&self) -> usize {
        let n = self.packed.len();
        match self.plan {
            EvalPlan::DenseHorner => n,
            // x·x, Horner in y (n fmas), final ·x.
            EvalPlan::OddHorner => {
                if n == 0 {
                    0
                } else {
                    1 + n + 1
                }
            }
            EvalPlan::DenseEstrin => estrin_mults(n),
            EvalPlan::OddEstrin => {
                if n == 0 {
                    0
                } else {
                    1 + estrin_mults(n) + 1
                }
            }
            EvalPlan::DensePs => {
                if n <= 1 {
                    0
                } else {
                    let plan = ps_plan(n - 1);
                    // Baby powers + x^k, one mult per coefficient term,
                    // one per giant Horner step.
                    plan.block + (n - plan.blocks) + plan.blocks.saturating_sub(1)
                }
            }
        }
    }

    /// Evaluates at one point.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        match self.plan {
            EvalPlan::DenseHorner => horner(&self.packed, x),
            EvalPlan::OddHorner => horner(&self.packed, x * x) * x,
            EvalPlan::DenseEstrin => estrin(&self.packed, x),
            EvalPlan::OddEstrin => estrin(&self.packed, x * x) * x,
            EvalPlan::DensePs => ps_packed(&self.packed, x),
        }
    }

    /// Batch evaluation: `out[i] = p(xs[i])`.
    ///
    /// Every backend runs the same fixed-width lane loop: `LANES`
    /// independent accumulator arrays per chunk so the per-element
    /// dependency chains overlap (explicit-lane code on stable Rust —
    /// no `std::simd`). The Estrin backends reuse one array-of-lanes
    /// scratch buffer across the whole slice. Each lane executes the
    /// scalar backend's exact operation sequence, so batch output is
    /// bit-identical to [`PolyEval::eval`] per element.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `out` differ in length.
    pub fn eval_slice(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "eval_slice length mismatch");
        match self.plan {
            EvalPlan::DenseHorner => {
                lanes(
                    xs,
                    out,
                    |x| horner(&self.packed, x),
                    |lane| {
                        let mut acc = [0.0; LANES];
                        for &c in self.packed.iter().rev() {
                            for (a, &x) in acc.iter_mut().zip(lane) {
                                *a = *a * x + c;
                            }
                        }
                        acc
                    },
                );
            }
            EvalPlan::OddHorner => {
                lanes(
                    xs,
                    out,
                    |x| horner(&self.packed, x * x) * x,
                    |lane| {
                        let mut y = [0.0; LANES];
                        for (yi, &x) in y.iter_mut().zip(lane) {
                            *yi = x * x;
                        }
                        let mut acc = [0.0; LANES];
                        for &c in self.packed.iter().rev() {
                            for (a, &yi) in acc.iter_mut().zip(&y) {
                                *a = *a * yi + c;
                            }
                        }
                        for (a, &x) in acc.iter_mut().zip(lane) {
                            *a *= x;
                        }
                        acc
                    },
                );
            }
            EvalPlan::DenseEstrin => {
                let mut wide = vec![[0.0; LANES]; self.packed.len()];
                let mut scratch = vec![0.0; self.packed.len()];
                lanes(
                    xs,
                    out,
                    |x| estrin_with(&self.packed, x, &mut scratch),
                    |lane| estrin_lanes(&self.packed, lane, &mut wide),
                );
            }
            EvalPlan::OddEstrin => {
                let mut wide = vec![[0.0; LANES]; self.packed.len()];
                let mut scratch = vec![0.0; self.packed.len()];
                lanes(
                    xs,
                    out,
                    |x| estrin_with(&self.packed, x * x, &mut scratch) * x,
                    |lane| {
                        let mut y = [0.0; LANES];
                        for (yi, &x) in y.iter_mut().zip(lane) {
                            *yi = x * x;
                        }
                        let mut acc = estrin_lanes(&self.packed, &y, &mut wide);
                        for (a, &x) in acc.iter_mut().zip(lane) {
                            *a *= x;
                        }
                        acc
                    },
                );
            }
            EvalPlan::DensePs => {
                lanes(
                    xs,
                    out,
                    |x| ps_packed(&self.packed, x),
                    |lane| ps_lanes(&self.packed, lane),
                );
            }
        }
    }

    /// In-place batch evaluation: `xs[i] = p(xs[i])`.
    pub fn eval_slice_in_place(&self, xs: &mut [f64]) {
        // Each output depends only on its own input, so staging through
        // a fixed stack buffer keeps this allocation-free on the Horner
        // paths while still hitting eval_slice's lane loop; the buffer
        // spans several lane widths so the Estrin backends amortise
        // their scratch allocation too.
        const STAGE: usize = 8 * LANES;
        let mut staged = [0.0; STAGE];
        let mut i = 0;
        while i < xs.len() {
            let end = (i + STAGE).min(xs.len());
            let n = end - i;
            self.eval_slice(&xs[i..end], &mut staged[..n]);
            xs[i..end].copy_from_slice(&staged[..n]);
            i = end;
        }
    }

    /// Allocating convenience wrapper over [`PolyEval::eval_slice`].
    pub fn eval_vec(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; xs.len()];
        self.eval_slice(xs, &mut out);
        out
    }
}

/// Horner over an ascending packed coefficient slice — an index-free
/// reverse walk, no iterator adaptors.
///
/// Deliberately seeds the accumulator with `0.0` and walks the whole
/// slice: the uniform loop optimises measurably better than a
/// peel-the-top-coefficient variant (benchmarked at ~2x on the deg-7
/// scalar path), at the cost of one bootstrap `0·x` fma that
/// [`PolyEval::mults_per_eval`] counts as executed.
#[inline]
fn horner(packed: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &c in packed.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Runs `f` over full [`LANES`]-wide chunks and `tail` over the rest.
#[inline]
fn lanes(
    xs: &[f64],
    out: &mut [f64],
    mut tail: impl FnMut(f64) -> f64,
    mut f: impl FnMut(&[f64; LANES]) -> [f64; LANES],
) {
    let mut chunks_out = out.chunks_exact_mut(LANES);
    let mut chunks_in = xs.chunks_exact(LANES);
    for (o, i) in chunks_out.by_ref().zip(chunks_in.by_ref()) {
        let lane: &[f64; LANES] = i.try_into().expect("exact chunk");
        o.copy_from_slice(&f(lane));
    }
    for (o, &x) in chunks_out
        .into_remainder()
        .iter_mut()
        .zip(chunks_in.remainder())
    {
        *o = tail(x);
    }
}

/// Estrin evaluation without heap traffic: scalar calls stage through a
/// stack buffer up to degree 63 and only spill to the heap beyond.
#[inline]
fn estrin(packed: &[f64], x: f64) -> f64 {
    if packed.len() <= 64 {
        let mut scratch = [0.0; 64];
        estrin_with(packed, x, &mut scratch)
    } else {
        let mut scratch = vec![0.0; packed.len()];
        estrin_with(packed, x, &mut scratch)
    }
}

/// Estrin evaluation reusing `scratch` (`scratch.len() >= packed.len()`).
fn estrin_with(packed: &[f64], x: f64, scratch: &mut [f64]) -> f64 {
    match packed.len() {
        0 => return 0.0,
        1 => return packed[0],
        _ => {}
    }
    let mut len = packed.len();
    scratch[..len].copy_from_slice(packed);
    let mut p = x;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            scratch[i] = scratch[2 * i] + scratch[2 * i + 1] * p;
        }
        if len % 2 == 1 {
            scratch[half] = scratch[len - 1];
        }
        len = half + len % 2;
        if len > 1 {
            p *= p; // next round's power; skipped once reduced to one value
        }
    }
    scratch[0]
}

/// Estrin reduction over [`LANES`] points at once. `wide` is the
/// array-of-lanes scratch (`wide.len() >= packed.len()`), reused across
/// the whole slice. Per element this performs exactly the operation
/// sequence of [`estrin_with`], so batch results stay bit-identical to
/// the scalar path; the lane structure exists purely so the compiler
/// can keep [`LANES`] independent reductions in flight (auto-vectorised
/// on stable Rust, no `std::simd`).
fn estrin_lanes(packed: &[f64], lane: &[f64; LANES], wide: &mut [[f64; LANES]]) -> [f64; LANES] {
    match packed.len() {
        0 => return [0.0; LANES],
        1 => return [packed[0]; LANES],
        _ => {}
    }
    let mut len = packed.len();
    for (w, &c) in wide.iter_mut().zip(packed) {
        *w = [c; LANES];
    }
    let mut p = *lane;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let lo = wide[2 * i];
            let hi = wide[2 * i + 1];
            let dst = &mut wide[i];
            for l in 0..LANES {
                dst[l] = lo[l] + hi[l] * p[l];
            }
        }
        if len % 2 == 1 {
            wide[half] = wide[len - 1];
        }
        len = half + len % 2;
        if len > 1 {
            for pl in &mut p {
                *pl *= *pl;
            }
        }
    }
    wide[0]
}

/// Multiplications one Estrin reduction of `n` packed coefficients
/// performs (pair combines + power squarings).
fn estrin_mults(n: usize) -> usize {
    let mut len = n;
    let mut mults = 0;
    while len > 1 {
        mults += len / 2; // pair combines
        len = len / 2 + len % 2;
        if len > 1 {
            mults += 1; // next power squaring
        }
    }
    mults
}

/// Paterson–Stockmeyer over a dense ascending coefficient slice. Baby
/// powers live on the stack up to degree 255 (block ≈ sqrt(d+1) ≤ 16).
fn ps_packed(coeffs: &[f64], x: f64) -> f64 {
    let d = coeffs.len() - 1;
    if d == 0 {
        return coeffs[0];
    }
    let plan = ps_plan(d);
    let k = plan.block;
    let mut baby_stack = [1.0; 16];
    let mut baby_heap;
    let baby: &mut [f64] = if k <= 16 {
        &mut baby_stack[..k]
    } else {
        baby_heap = vec![1.0; k];
        &mut baby_heap
    };
    for i in 1..k {
        baby[i] = baby[i - 1] * x;
    }
    let xk = baby[k - 1] * x;
    // baby[0] is 1, so each block's lowest coefficient needs no
    // multiply, and the top block seeds the giant-step Horner without
    // the zero-accumulator product — this is exactly the multiply
    // count `mults_per_eval` models for `DensePs`.
    let block_val = |blk: usize| {
        let start = blk * k;
        let mut v = coeffs[start];
        for (i, &pow) in baby.iter().enumerate().skip(1) {
            if let Some(&c) = coeffs.get(start + i) {
                v += c * pow;
            }
        }
        v
    };
    let top = plan.blocks - 1;
    let mut acc = block_val(top);
    for blk in (0..top).rev() {
        acc = acc * xk + block_val(blk);
    }
    acc
}

/// Paterson–Stockmeyer over [`LANES`] points at once: the baby-power
/// table holds one [`LANES`]-wide row per power, and the giant-step
/// Horner runs all lanes in lockstep. Same per-element operation
/// sequence as [`ps_packed`], so results are bit-identical to scalar.
fn ps_lanes(coeffs: &[f64], lane: &[f64; LANES]) -> [f64; LANES] {
    let d = coeffs.len() - 1;
    if d == 0 {
        return [coeffs[0]; LANES];
    }
    let plan = ps_plan(d);
    let k = plan.block;
    let mut baby_stack = [[1.0; LANES]; 16];
    let mut baby_heap;
    let baby: &mut [[f64; LANES]] = if k <= 16 {
        &mut baby_stack[..k]
    } else {
        baby_heap = vec![[1.0; LANES]; k];
        &mut baby_heap
    };
    for i in 1..k {
        let prev = baby[i - 1];
        for l in 0..LANES {
            baby[i][l] = prev[l] * lane[l];
        }
    }
    let mut xk = [0.0; LANES];
    for l in 0..LANES {
        xk[l] = baby[k - 1][l] * lane[l];
    }
    let block_val = |blk: usize, baby: &[[f64; LANES]]| -> [f64; LANES] {
        let start = blk * k;
        let mut v = [coeffs[start]; LANES];
        for (i, pow) in baby.iter().enumerate().skip(1) {
            if let Some(&c) = coeffs.get(start + i) {
                for l in 0..LANES {
                    v[l] += c * pow[l];
                }
            }
        }
        v
    };
    let top = plan.blocks - 1;
    let mut acc = block_val(top, baby);
    for blk in (0..top).rev() {
        let bv = block_val(blk, baby);
        for l in 0..LANES {
            acc[l] = acc[l] * xk[l] + bv[l];
        }
    }
    acc
}

/// The even-power-ladder schedule the CKKS `PafEvaluator` executes for
/// one odd stage: packed odd coefficients plus the ladder shape. Owning
/// this here keeps the ciphertext evaluator, the analytic cost model,
/// and the plaintext engine agreeing on one schedule.
#[derive(Debug, Clone)]
pub struct OddPowerSchedule {
    odd: Vec<f64>,
    ladder_bits: u32,
}

impl OddPowerSchedule {
    /// Builds the schedule for one odd stage.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not an odd function or is constant.
    pub fn new(p: &Polynomial) -> Self {
        assert!(p.is_odd_function(), "stage must be odd");
        let odd = p.odd_coeffs();
        assert!(!odd.is_empty(), "constant stage");
        let k_max = odd.len() - 1;
        let ladder_bits = if k_max == 0 {
            0
        } else {
            usize::BITS - k_max.leading_zeros()
        };
        OddPowerSchedule { odd, ladder_bits }
    }

    /// Packed odd coefficients `[a0, a1, ...]` (`a_k` multiplies
    /// `x^(2k+1)`).
    pub fn odd_coeffs(&self) -> &[f64] {
        &self.odd
    }

    /// Highest packed index `k_max`.
    pub fn k_max(&self) -> usize {
        self.odd.len() - 1
    }

    /// Squarings in the even power ladder (`x² … x^(2^bits)`).
    pub fn ladder_bits(&self) -> u32 {
        self.ladder_bits
    }

    /// The coarse non-scalar multiplication model used throughout the
    /// latency accounting (`CompositePaf::ct_mult_count`,
    /// `ps::squaring_schedule_mults`): one squaring plus one product
    /// per odd term beyond the first.
    pub fn modelled_ct_mults(&self) -> usize {
        let n_odd = self.odd.len();
        if n_odd <= 1 {
            0
        } else {
            n_odd
        }
    }

    /// Exact ciphertext-ciphertext multiplication count of the ladder
    /// schedule: every ladder squaring, plus one product per set bit of
    /// each non-zero term's packed index.
    pub fn exact_ct_mults(&self) -> usize {
        let terms: u32 = self
            .odd
            .iter()
            .enumerate()
            .filter(|(_, &a)| a != 0.0)
            .map(|(k, _)| k.count_ones())
            .sum();
        self.ladder_bits as usize + terms as usize
    }
}

/// A prepared evaluator for a whole [`CompositePaf`]: one [`PolyEval`]
/// per stage, plus the sign → ReLU / max constructions over scalars and
/// slices.
///
/// # Example
///
/// ```
/// use smartpaf_polyfit::{CompositeEval, CompositePaf, PafForm};
///
/// let paf = CompositePaf::from_form(PafForm::F1G2);
/// let eng = CompositeEval::new(&paf);
/// assert!((eng.eval(0.5) - paf.eval(0.5)).abs() < 1e-15);
/// let out = eng.relu_vec(&[-0.5, 0.5]);
/// assert!(out[0].abs() < 0.05 && (out[1] - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CompositeEval {
    stages: Vec<PolyEval>,
    /// One ciphertext-side schedule per odd non-constant stage (`None`
    /// for stages the even-power ladder cannot express), prepared once
    /// so cost oracles pay no per-query schedule construction.
    schedules: Vec<Option<OddPowerSchedule>>,
}

impl CompositeEval {
    /// Prepares every stage of a composite.
    pub fn new(paf: &CompositePaf) -> Self {
        CompositeEval {
            stages: paf.stages().iter().map(PolyEval::new).collect(),
            schedules: paf
                .stages()
                .iter()
                .map(|p| (p.is_odd_function() && p.degree() >= 1).then(|| OddPowerSchedule::new(p)))
                .collect(),
        }
    }

    /// The prepared per-stage plans.
    pub fn stages(&self) -> &[PolyEval] {
        &self.stages
    }

    /// The prepared ciphertext-side schedules, parallel to
    /// [`CompositeEval::stages`].
    pub fn schedules(&self) -> &[Option<OddPowerSchedule>] {
        &self.schedules
    }

    /// Exact ciphertext-ciphertext multiplications of one composite
    /// (sign) evaluation under the even-power-ladder schedule — the sum
    /// of [`OddPowerSchedule::exact_ct_mults`] over the stages.
    pub fn exact_ct_mults(&self) -> usize {
        self.schedules
            .iter()
            .flatten()
            .map(OddPowerSchedule::exact_ct_mults)
            .sum()
    }

    /// Coarse modelled ciphertext multiplications of one composite
    /// evaluation ([`OddPowerSchedule::modelled_ct_mults`] summed).
    pub fn modelled_ct_mults(&self) -> usize {
        self.schedules
            .iter()
            .flatten()
            .map(OddPowerSchedule::modelled_ct_mults)
            .sum()
    }

    /// Composite sign approximation at one point.
    pub fn eval(&self, x: f64) -> f64 {
        self.stages.iter().fold(x, |acc, s| s.eval(acc))
    }

    /// Batch composite evaluation, stage by stage over the buffer.
    pub fn eval_slice(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "eval_slice length mismatch");
        out.copy_from_slice(xs);
        for stage in &self.stages {
            stage.eval_slice_in_place(out);
        }
    }

    /// ReLU approximation `(x + x·paf(x))/2` at one point.
    pub fn relu(&self, x: f64) -> f64 {
        (x + x * self.eval(x)) / 2.0
    }

    /// Batch ReLU: `out[i] = (x + x·paf(x))/2` for `x = xs[i]`.
    pub fn relu_slice(&self, xs: &[f64], out: &mut [f64]) {
        self.eval_slice(xs, out);
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = (x + x * *o) / 2.0;
        }
    }

    /// Allocating wrapper over [`CompositeEval::relu_slice`].
    pub fn relu_vec(&self, xs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; xs.len()];
        self.relu_slice(xs, &mut out);
        out
    }

    /// Max approximation `((x+y) + (x−y)·paf(x−y))/2` at one point.
    pub fn max(&self, x: f64, y: f64) -> f64 {
        ((x + y) + (x - y) * self.eval(x - y)) / 2.0
    }

    /// Batch max over paired slices.
    ///
    /// # Panics
    ///
    /// Panics if the three slices differ in length.
    pub fn max_slice(&self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "max_slice length mismatch");
        let diffs: Vec<f64> = xs.iter().zip(ys).map(|(&x, &y)| x - y).collect();
        self.eval_slice(&diffs, out);
        for i in 0..out.len() {
            out[i] = ((xs[i] + ys[i]) + diffs[i] * out[i]) / 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::PafForm;
    use crate::ps::squaring_schedule_mults;

    fn naive_eval(p: &Polynomial, x: f64) -> f64 {
        p.coeffs()
            .iter()
            .enumerate()
            .map(|(i, &c)| c * x.powi(i as i32))
            .sum()
    }

    #[test]
    fn plan_selection_by_symmetry_and_degree() {
        let f1 = Polynomial::from_odd(&[1.5, -0.5]);
        assert_eq!(EvalPlan::select(&f1), EvalPlan::OddHorner);
        // Every PAF stage degree in the paper stays in Horner range.
        let deg27 = Polynomial::from_odd(&[1.0; 14]);
        assert_eq!(EvalPlan::select(&deg27), EvalPlan::OddHorner);
        // The lane loop keeps Horner ahead well past the old Estrin
        // break-even (packed 33); the switch now sits at packed 64.
        let deg_odd_40 = Polynomial::from_odd(&[1.0; 40]);
        assert_eq!(EvalPlan::select(&deg_odd_40), EvalPlan::OddHorner);
        let deg_odd_huge = Polynomial::from_odd(&[1.0; 64]);
        assert_eq!(EvalPlan::select(&deg_odd_huge), EvalPlan::OddEstrin);
        let dense7 = Polynomial::new(vec![1.0; 8]);
        assert_eq!(EvalPlan::select(&dense7), EvalPlan::DenseHorner);
        let dense48 = Polynomial::new(vec![1.0; 48]);
        assert_eq!(EvalPlan::select(&dense48), EvalPlan::DenseHorner);
        // Dense selection goes straight Horner → PS: the explicit-lane
        // batch loop subsumes Estrin's depth advantage below the PS
        // crossover, so DenseEstrin is explicit-plan-only now.
        let dense64 = Polynomial::new(vec![1.0; 64]);
        assert_eq!(EvalPlan::select(&dense64), EvalPlan::DensePs);
        let dense160 = Polynomial::new(vec![1.0; 160]);
        assert_eq!(EvalPlan::select(&dense160), EvalPlan::DensePs);
    }

    #[test]
    fn all_backends_agree_on_odd_poly() {
        let p = Polynomial::from_odd(&[7.3, -34.7, 59.9, -31.9]);
        for plan in [
            EvalPlan::DenseHorner,
            EvalPlan::OddHorner,
            EvalPlan::DenseEstrin,
            EvalPlan::OddEstrin,
            EvalPlan::DensePs,
        ] {
            let pe = PolyEval::with_plan(&p, plan);
            for i in -20..=20 {
                let x = i as f64 / 10.0;
                let want = naive_eval(&p, x);
                let got = pe.eval(x);
                assert!(
                    (got - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "{plan:?} at {x}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn eval_slice_matches_scalar_across_lane_boundaries() {
        // Lengths straddling the lane width exercise both the chunk
        // loop and the remainder loop.
        let p = Polynomial::from_odd(&[2.4, -2.63, 1.55, -0.33]);
        let pe = PolyEval::new(&p);
        for len in [0, 1, 7, 8, 9, 16, 31] {
            let xs: Vec<f64> = (0..len).map(|i| i as f64 / 16.0 - 0.9).collect();
            let mut out = vec![0.0; len];
            pe.eval_slice(&xs, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, pe.eval(x), "len {len}, x {x}");
            }
        }
    }

    #[test]
    fn lane_backends_bit_identical_to_scalar() {
        // The explicit-lane Estrin / Paterson–Stockmeyer chunks must
        // reproduce the scalar backends exactly (same per-element
        // operation order), across chunk and remainder paths.
        let odd_big =
            Polynomial::from_odd(&(0..40).map(|i| 0.01 * i as f64 - 0.2).collect::<Vec<_>>());
        let dense_big = Polynomial::new(
            (0..160)
                .map(|i| ((i * 37) % 19) as f64 / 19.0 - 0.5)
                .collect(),
        );
        for (p, plan) in [
            (&odd_big, EvalPlan::OddEstrin),
            (&dense_big, EvalPlan::DenseEstrin),
            (&dense_big, EvalPlan::DensePs),
        ] {
            let pe = PolyEval::with_plan(p, plan);
            for len in [1, 7, 8, 9, 16, 23, 64] {
                let xs: Vec<f64> = (0..len).map(|i| i as f64 / len as f64 - 0.45).collect();
                let mut out = vec![0.0; len];
                pe.eval_slice(&xs, &mut out);
                for (&x, &o) in xs.iter().zip(&out) {
                    assert_eq!(o, pe.eval(x), "{plan:?} len {len}, x {x}");
                }
            }
        }
    }

    #[test]
    fn eval_slice_in_place_matches() {
        let p = Polynomial::new(vec![0.5, -1.0, 0.25, 2.0, -0.125]);
        let pe = PolyEval::new(&p);
        let xs: Vec<f64> = (0..37).map(|i| i as f64 / 18.0 - 1.0).collect();
        let mut buf = xs.clone();
        pe.eval_slice_in_place(&mut buf);
        for (&x, &b) in xs.iter().zip(&buf) {
            assert_eq!(b, pe.eval(x));
        }
    }

    #[test]
    fn odd_plan_halves_multiplies_vs_dense() {
        // The micro cost-model assertion behind the bench fix: the
        // deg-7 odd stage executes 6 multiplies (x², 4 Horner fmas
        // incl. the bootstrap one, final ·x) against dense Horner's 8,
        // mirroring the non-scalar schedule model.
        let p = Polynomial::from_odd(&[7.3, -34.7, 59.9, -31.9]);
        let dense = PolyEval::with_plan(&p, EvalPlan::DenseHorner);
        let odd = PolyEval::with_plan(&p, EvalPlan::OddHorner);
        assert_eq!(dense.mults_per_eval(), 8);
        assert_eq!(odd.mults_per_eval(), 6);
        assert!(odd.mults_per_eval() < dense.mults_per_eval());
        // Consistent with the ciphertext-side schedule model: the odd
        // schedule also beats one mult per degree.
        assert!(squaring_schedule_mults(4) < 7);
        assert_eq!(
            OddPowerSchedule::new(&p).modelled_ct_mults(),
            squaring_schedule_mults(4)
        );
    }

    #[test]
    fn estrin_mult_model_matches_backend_structure() {
        // n=4: rounds (4->2->1) combine 2+1 pairs + 1 squaring.
        assert_eq!(estrin_mults(4), 4);
        assert_eq!(estrin_mults(1), 0);
        assert_eq!(estrin_mults(2), 1);
    }

    #[test]
    fn odd_power_schedule_counts() {
        let deg7 = Polynomial::from_odd(&[7.3, -34.7, 59.9, -31.9]);
        let s = OddPowerSchedule::new(&deg7);
        assert_eq!(s.k_max(), 3);
        assert_eq!(s.ladder_bits(), 2);
        assert_eq!(s.modelled_ct_mults(), 4);
        // Exact ladder: 2 squarings + popcounts(1,2,3 -> 1+1+2) + k=0 free.
        assert_eq!(s.exact_ct_mults(), 6);
        // x^5-only stage: ladder 2, single term popcount(2) = 1.
        let sparse = OddPowerSchedule::new(&Polynomial::from_odd(&[0.0, 0.0, 1.0]));
        assert_eq!(sparse.exact_ct_mults(), 3);
        // Degree-1 stage needs no ladder at all.
        let lin = OddPowerSchedule::new(&Polynomial::from_odd(&[2.0]));
        assert_eq!(lin.ladder_bits(), 0);
        assert_eq!(lin.exact_ct_mults(), 0);
    }

    #[test]
    fn composite_eval_schedule_accessors() {
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let eng = CompositeEval::new(&paf);
        assert_eq!(eng.schedules().len(), eng.stages().len());
        assert!(eng.schedules().iter().all(Option::is_some));
        let exact: usize = paf
            .stages()
            .iter()
            .map(|p| OddPowerSchedule::new(p).exact_ct_mults())
            .sum();
        assert_eq!(eng.exact_ct_mults(), exact);
        assert_eq!(eng.exact_ct_mults(), paf.exact_ct_mult_count());
        assert_eq!(eng.modelled_ct_mults(), paf.ct_mult_count());
        // The exact ladder schedule charges the per-term bit products
        // the coarse model folds into one product per term.
        assert!(eng.exact_ct_mults() >= eng.modelled_ct_mults());
    }

    #[test]
    fn composite_eval_matches_unprepared() {
        for form in PafForm::all() {
            let paf = CompositePaf::from_form(form);
            let eng = CompositeEval::new(&paf);
            for i in -8..=8 {
                let x = i as f64 / 8.0;
                assert!((eng.eval(x) - paf.eval(x)).abs() < 1e-12, "{form} at {x}");
                assert!((eng.relu(x) - paf.relu(x)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn composite_slices_match_scalars() {
        let paf = CompositePaf::from_form(PafForm::F1SqG1Sq);
        let eng = CompositeEval::new(&paf);
        let xs: Vec<f64> = (0..41).map(|i| i as f64 / 20.0 - 1.0).collect();
        let ys: Vec<f64> = xs.iter().rev().copied().collect();
        let mut sign = vec![0.0; xs.len()];
        let mut relu = vec![0.0; xs.len()];
        let mut max = vec![0.0; xs.len()];
        eng.eval_slice(&xs, &mut sign);
        eng.relu_slice(&xs, &mut relu);
        eng.max_slice(&xs, &ys, &mut max);
        for i in 0..xs.len() {
            assert_eq!(sign[i], eng.eval(xs[i]));
            assert_eq!(relu[i], eng.relu(xs[i]));
            assert_eq!(max[i], eng.max(xs[i], ys[i]));
        }
    }

    /// Calibration harness behind `ESTRIN_MIN_PACKED` /
    /// `PS_MIN_PACKED`: times each batch backend across packed sizes
    /// and prints ns/point. Run with
    /// `cargo test -p smartpaf_polyfit --release -- --ignored --nocapture calibrate`.
    #[test]
    #[ignore = "manual calibration harness, run with --release"]
    fn calibrate_thresholds() {
        use std::time::Instant;
        let pts = 4096;
        let xs: Vec<f64> = (0..pts)
            .map(|i| i as f64 / pts as f64 * 1.8 - 0.9)
            .collect();
        let mut out = vec![0.0; pts];
        let time = |pe: &PolyEval, out: &mut Vec<f64>| {
            // Warm up, then best-of-5.
            pe.eval_slice(&xs, out);
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                for _ in 0..20 {
                    pe.eval_slice(&xs, out);
                }
                best = best.min(t.elapsed().as_secs_f64() / 20.0 / pts as f64 * 1e9);
            }
            best
        };
        let time_scalar = |pe: &PolyEval| {
            let mut sink = 0.0;
            for &x in &xs {
                sink += pe.eval(x);
            }
            std::hint::black_box(sink);
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                for _ in 0..20 {
                    let mut s = 0.0;
                    for &x in &xs {
                        s += pe.eval(x);
                    }
                    std::hint::black_box(s);
                }
                best = best.min(t.elapsed().as_secs_f64() / 20.0 / pts as f64 * 1e9);
            }
            best
        };
        println!(
            "packed  horner  estrin      ps | scalar: horner  estrin      ps   (dense, ns/point)"
        );
        for packed in [8, 16, 24, 32, 48, 64, 96, 128, 192, 256] {
            let p = Polynomial::new(
                (0..packed)
                    .map(|i| ((i * 37) % 19) as f64 / 19.0 - 0.5)
                    .collect(),
            );
            let ph = PolyEval::with_plan(&p, EvalPlan::DenseHorner);
            let pe_ = PolyEval::with_plan(&p, EvalPlan::DenseEstrin);
            let pp = PolyEval::with_plan(&p, EvalPlan::DensePs);
            let (h, e, s) = (
                time(&ph, &mut out),
                time(&pe_, &mut out),
                time(&pp, &mut out),
            );
            let (sh, se, ss) = (time_scalar(&ph), time_scalar(&pe_), time_scalar(&pp));
            println!(
                "{packed:6}  {h:6.2}  {e:6.2}  {s:6.2} |         {sh:6.2}  {se:6.2}  {ss:6.2}"
            );
        }
        println!("packed  horner  estrin   (odd-packed, ns/point)");
        for packed in [8, 16, 24, 32, 48, 64, 96] {
            let p = Polynomial::from_odd(
                &(0..packed)
                    .map(|i| ((i * 37) % 19) as f64 / 19.0 - 0.5)
                    .collect::<Vec<_>>(),
            );
            let h = time(&PolyEval::with_plan(&p, EvalPlan::OddHorner), &mut out);
            let e = time(&PolyEval::with_plan(&p, EvalPlan::OddEstrin), &mut out);
            println!("{packed:6}  {h:6.2}  {e:6.2}");
        }
    }

    #[test]
    #[should_panic(expected = "non-odd")]
    fn odd_plan_rejects_dense_poly() {
        let _ = PolyEval::with_plan(&Polynomial::new(vec![1.0, 1.0]), EvalPlan::OddHorner);
    }

    #[test]
    fn zero_and_constant_polynomials() {
        let zero = Polynomial::zero();
        let pe = PolyEval::new(&zero);
        assert_eq!(pe.eval(3.0), 0.0);
        let c = Polynomial::new(vec![4.25]);
        for plan in [
            EvalPlan::DenseHorner,
            EvalPlan::DenseEstrin,
            EvalPlan::DensePs,
        ] {
            assert_eq!(PolyEval::with_plan(&c, plan).eval(-2.0), 4.25);
        }
    }
}
