//! Coefficient Tuning (CT) — paper §4.2.
//!
//! CT re-fits a PAF's coefficients to the *profiled input distribution*
//! of the specific non-polynomial layer it replaces, producing a
//! closer-to-optimal initialisation (Eq. 3) before any fine-tuning.
//!
//! The pipeline is exactly the paper's four steps:
//! 1. start from coefficients given by a traditional approximation
//!    (Chebyshev/minimax, see [`crate::chebyshev_fit`] /
//!    [`crate::minimax_sign`]);
//! 2. profile the layer's input distribution ([`ActivationProfile`]);
//! 3. tune the coefficients to minimise the distribution-weighted
//!    approximation error ([`tune_composite`], Adam in `f64`);
//! 4. install the tuned PAF at that layer.

use crate::composite::{sign_exact, CompositePaf};

/// A histogram summary of a layer's (scaled) input distribution.
///
/// Bin centres and probability weights over `[-1, 1]`; built from raw
/// activation samples that Dynamic Scaling has already normalised.
#[derive(Debug, Clone)]
pub struct ActivationProfile {
    centers: Vec<f64>,
    weights: Vec<f64>,
}

impl ActivationProfile {
    /// Builds a profile from raw samples using `bins` histogram bins
    /// over `[-1, 1]`. Samples outside the range are clamped into the
    /// edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `samples` is empty.
    pub fn from_samples(samples: &[f32], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(!samples.is_empty(), "empty sample set");
        let mut counts = vec![0.0f64; bins];
        for &s in samples {
            let t = ((s as f64 + 1.0) / 2.0).clamp(0.0, 1.0 - 1e-12);
            counts[(t * bins as f64) as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let centers = (0..bins)
            .map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / bins as f64)
            .collect();
        let weights = counts.iter().map(|c| c / total).collect();
        ActivationProfile { centers, weights }
    }

    /// A uniform profile over `[-1, 1]` — what the untuned baseline
    /// implicitly assumes.
    pub fn uniform(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let centers = (0..bins)
            .map(|i| -1.0 + 2.0 * (i as f64 + 0.5) / bins as f64)
            .collect();
        let weights = vec![1.0 / bins as f64; bins];
        ActivationProfile { centers, weights }
    }

    /// Bin centres.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Probability weight per bin (sums to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Distribution-weighted squared sign-approximation error of a PAF.
    pub fn weighted_error(&self, paf: &CompositePaf) -> f64 {
        self.centers
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| {
                let d = paf.eval(x) - sign_exact(x);
                w * d * d
            })
            .sum()
    }
}

/// Hyperparameters for coefficient tuning.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Adam iterations.
    pub iters: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Points within `|x| < dead_zone` are excluded from the loss:
    /// `sign` is discontinuous there and chasing it destabilises tuning.
    pub dead_zone: f64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            iters: 400,
            lr: 5e-3,
            dead_zone: 0.02,
        }
    }
}

/// Result of a tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TuneReport {
    /// Weighted error before tuning.
    pub error_before: f64,
    /// Weighted error after tuning.
    pub error_after: f64,
}

impl TuneReport {
    /// Multiplicative improvement (`before / after`).
    pub fn improvement(&self) -> f64 {
        if self.error_after == 0.0 {
            f64::INFINITY
        } else {
            self.error_before / self.error_after
        }
    }
}

/// Tunes a composite PAF's odd coefficients against `sign(x)` weighted
/// by an activation profile, using full-batch Adam on the analytic
/// gradient (chain rule through the stage tape).
///
/// Returns the tuned PAF and before/after errors. The input PAF is not
/// modified.
pub fn tune_composite(
    paf: &CompositePaf,
    profile: &ActivationProfile,
    config: &TuneConfig,
) -> (CompositePaf, TuneReport) {
    let mut tuned = paf.clone();
    let error_before = profile.weighted_error(&tuned);

    // Collect (power index within stage, stage index) parameter layout.
    let layout: Vec<(usize, usize)> = tuned
        .stages()
        .iter()
        .enumerate()
        .flat_map(|(s, p)| (0..p.odd_coeffs().len()).map(move |j| (s, j)))
        .collect();
    let nparam = layout.len();
    let mut m = vec![0.0f64; nparam];
    let mut v = vec![0.0f64; nparam];
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);

    for it in 1..=config.iters {
        let mut grad = vec![0.0f64; nparam];
        for (&x, &w) in profile.centers().iter().zip(profile.weights()) {
            if x.abs() < config.dead_zone || w == 0.0 {
                continue;
            }
            let zs = tuned.eval_trace(x);
            let out = *zs.last().expect("trace non-empty");
            let dl_dout = 2.0 * w * (out - sign_exact(x));
            // Backward through stages, accumulating d out / d z.
            let mut gchain = dl_dout;
            for s in (0..tuned.num_stages()).rev() {
                let z_in = zs[s];
                let stage = &tuned.stages()[s];
                // Gradients for this stage's odd coefficients.
                let n_odd = stage.odd_coeffs().len();
                let base = layout
                    .iter()
                    .position(|&(ls, _)| ls == s)
                    .expect("stage in layout");
                for j in 0..n_odd {
                    grad[base + j] += gchain * z_in.powi(2 * j as i32 + 1);
                }
                gchain *= stage.derivative().eval(z_in);
            }
        }
        // Adam step.
        let bc1 = 1.0 - b1.powi(it as i32);
        let bc2 = 1.0 - b2.powi(it as i32);
        for (k, &(s, j)) in layout.iter().enumerate() {
            m[k] = b1 * m[k] + (1.0 - b1) * grad[k];
            v[k] = b2 * v[k] + (1.0 - b2) * grad[k] * grad[k];
            let step = config.lr * (m[k] / bc1) / ((v[k] / bc2).sqrt() + eps);
            let c = tuned.stages()[s].odd_coeffs()[j] - step;
            tuned.stages_mut()[s].coeffs_mut()[2 * j + 1] = c;
        }
    }

    let error_after = profile.weighted_error(&tuned);
    (
        tuned,
        TuneReport {
            error_before,
            error_after,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::PafForm;

    fn gaussian_samples(mean: f32, std: f32, n: usize) -> Vec<f32> {
        // Deterministic pseudo-gaussian via sum of uniforms.
        let mut state = 0x1234_5678_u64;
        (0..n)
            .map(|_| {
                let mut s = 0.0f32;
                for _ in 0..12 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s += (state >> 40) as f32 / (1u64 << 24) as f32;
                }
                mean + std * (s - 6.0)
            })
            .collect()
    }

    #[test]
    fn profile_weights_sum_to_one() {
        let p = ActivationProfile::from_samples(&gaussian_samples(0.0, 0.3, 5000), 64);
        let s: f64 = p.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(p.centers().len(), 64);
    }

    #[test]
    fn profile_concentrates_near_mean() {
        let p = ActivationProfile::from_samples(&gaussian_samples(0.5, 0.05, 5000), 32);
        let peak = p
            .weights()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| p.centers()[i])
            .expect("non-empty");
        assert!((peak - 0.5).abs() < 0.15, "peak at {peak}");
    }

    #[test]
    fn ct_improves_concentrated_distribution() {
        // Inputs concentrated in a narrow band: CT should beat the
        // generic full-range coefficients (paper Fig. 7).
        let samples = gaussian_samples(0.0, 0.12, 4000);
        let profile = ActivationProfile::from_samples(&samples, 64);
        let paf = CompositePaf::from_form(PafForm::F1G2);
        let (_tuned, report) = tune_composite(&paf, &profile, &TuneConfig::default());
        assert!(
            report.error_after < report.error_before,
            "CT failed: {} -> {}",
            report.error_before,
            report.error_after
        );
        assert!(report.improvement() > 1.0);
    }

    #[test]
    fn ct_larger_gain_for_lower_degree() {
        // Paper Fig. 7: CT helps low-degree PAFs more than high-degree.
        let samples = gaussian_samples(0.0, 0.1, 4000);
        let profile = ActivationProfile::from_samples(&samples, 64);
        let cfg = TuneConfig::default();
        let (_, low) = tune_composite(&CompositePaf::from_form(PafForm::F1G2), &profile, &cfg);
        let (_, high) = tune_composite(&CompositePaf::from_form(PafForm::F1SqG1Sq), &profile, &cfg);
        assert!(
            low.improvement() > high.improvement() * 0.5,
            "low {} vs high {}",
            low.improvement(),
            high.improvement()
        );
    }

    #[test]
    fn tuning_preserves_oddness() {
        let samples = gaussian_samples(0.0, 0.2, 2000);
        let profile = ActivationProfile::from_samples(&samples, 32);
        let paf = CompositePaf::from_form(PafForm::F2G2);
        let (tuned, _) = tune_composite(&paf, &profile, &TuneConfig::default());
        for stage in tuned.stages() {
            assert!(stage.is_odd_function());
        }
    }

    #[test]
    fn uniform_profile_keeps_good_paf_stable() {
        // A PAF already near-optimal for the uniform distribution should
        // not get much worse.
        let profile = ActivationProfile::uniform(64);
        let paf = CompositePaf::from_form(PafForm::Alpha7);
        let (_, report) = tune_composite(
            &paf,
            &profile,
            &TuneConfig {
                iters: 100,
                ..TuneConfig::default()
            },
        );
        assert!(report.error_after <= report.error_before * 1.5);
    }

    #[test]
    fn improvement_metric_sane() {
        let r = TuneReport {
            error_before: 4.0,
            error_after: 2.0,
        };
        assert_eq!(r.improvement(), 2.0);
    }
}
