//! Composite-PAF search: regenerate the paper's Tab. 2 from first
//! principles.
//!
//! Tab. 2 lists "PAFs with the minimal multiplication depth under
//! different degree constraints". This module enumerates composites of
//! the Cheon et al. building blocks `f1..f3, g1..g3`, measures their
//! sign-approximation error on `[ε, 1]`, and extracts minimal-depth /
//! Pareto-optimal candidates — so the table's selections can be
//! *derived* instead of hardcoded, and the α → depth trade-off can be
//! swept beyond the paper's six forms.

use crate::composite::CompositePaf;
use crate::poly::Polynomial;
use std::fmt;

/// One Cheon et al. base stage usable in a composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseStage {
    /// `f1(x) = (3x − x³)/2`.
    F1,
    /// `f2(x) = (15x − 10x³ + 3x⁵)/8`.
    F2,
    /// `f3(x) = (35x − 35x³ + 21x⁵ − 5x⁷)/16`.
    F3,
    /// `g1(x) = (2126x − 1359x³)/2¹⁰`.
    G1,
    /// `g2(x) = (3334x − 6108x³ + 3796x⁵)/2¹⁰`.
    G2,
    /// `g3(x) = (4589x − 16577x³ + 25614x⁵ − 12860x⁷)/2¹⁰`.
    G3,
}

impl BaseStage {
    /// Every base stage, f-family first.
    pub fn all() -> [BaseStage; 6] {
        [
            BaseStage::F1,
            BaseStage::F2,
            BaseStage::F3,
            BaseStage::G1,
            BaseStage::G2,
            BaseStage::G3,
        ]
    }

    /// The stage polynomial.
    pub fn poly(&self) -> Polynomial {
        match self {
            BaseStage::F1 => Polynomial::from_odd(&[1.5, -0.5]),
            BaseStage::F2 => Polynomial::from_odd(&[1.875, -1.25, 0.375]),
            BaseStage::F3 => {
                Polynomial::from_odd(&[35.0 / 16.0, -35.0 / 16.0, 21.0 / 16.0, -5.0 / 16.0])
            }
            BaseStage::G1 => Polynomial::from_odd(&[2126.0 / 1024.0, -1359.0 / 1024.0]),
            BaseStage::G2 => {
                Polynomial::from_odd(&[3334.0 / 1024.0, -6108.0 / 1024.0, 3796.0 / 1024.0])
            }
            BaseStage::G3 => Polynomial::from_odd(&[
                4589.0 / 1024.0,
                -16577.0 / 1024.0,
                25614.0 / 1024.0,
                -12860.0 / 1024.0,
            ]),
        }
    }

    /// Stage degree.
    pub fn degree(&self) -> usize {
        self.poly().degree()
    }
}

impl fmt::Display for BaseStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaseStage::F1 => "f1",
            BaseStage::F2 => "f2",
            BaseStage::F3 => "f3",
            BaseStage::G1 => "g1",
            BaseStage::G2 => "g2",
            BaseStage::G3 => "g3",
        };
        f.write_str(s)
    }
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Accurate-range edge: error is measured on `[eps, 1]` (odd
    /// symmetry covers the negative side).
    pub eps: f64,
    /// Maximum number of composed stages.
    pub max_stages: usize,
    /// Error-grid sample count on `[eps, 1]`.
    pub samples: usize,
    /// Reject composites whose intermediate values exceed this bound
    /// anywhere on `[0, 1]` (CKKS plaintexts must stay bounded).
    pub value_bound: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            eps: 0.05,
            max_stages: 4,
            samples: 201,
            value_bound: 4.0,
        }
    }
}

/// A scored composite candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Stage sequence (applied first to last, the paper's Eq. 7 order).
    pub stages: Vec<BaseStage>,
    /// Multiplication depth under CKKS.
    pub depth: usize,
    /// Sum of stage degrees (the paper's headline "degree").
    pub degree: usize,
    /// Max |p(x) − 1| on `[eps, 1]`.
    pub max_error: f64,
}

impl Candidate {
    /// Materialises the candidate as a [`CompositePaf`].
    pub fn to_composite(&self) -> CompositePaf {
        CompositePaf::new(self.stages.iter().map(BaseStage::poly).collect())
    }

    /// Paper-style name, e.g. `f1∘g2`.
    pub fn name(&self) -> String {
        self.stages
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("∘")
    }

    /// Equivalent precision parameter `α = −log2(max_error)`.
    pub fn alpha(&self) -> f64 {
        -self.max_error.log2()
    }
}

fn score(stages: &[BaseStage], cfg: &SearchConfig) -> Option<Candidate> {
    let polys: Vec<Polynomial> = stages.iter().map(BaseStage::poly).collect();
    let mut max_error = 0.0f64;
    // Error grid on [eps, 1].
    for i in 0..cfg.samples {
        let x = cfg.eps + (1.0 - cfg.eps) * i as f64 / (cfg.samples - 1) as f64;
        let mut z = x;
        for p in &polys {
            z = p.eval(z);
        }
        max_error = max_error.max((z - 1.0).abs());
    }
    // Boundedness on all of [0, 1] (values inside [0, eps) may not
    // converge to 1 but must not blow up).
    for i in 0..cfg.samples {
        let x = i as f64 / (cfg.samples - 1) as f64;
        let mut z = x;
        for p in &polys {
            z = p.eval(z);
            if z.abs() > cfg.value_bound || !z.is_finite() {
                return None;
            }
        }
    }
    let composite = CompositePaf::new(polys);
    Some(Candidate {
        stages: stages.to_vec(),
        depth: composite.mult_depth(),
        degree: composite.sum_degree(),
        max_error,
    })
}

/// Enumerates every stage sequence up to `cfg.max_stages` and returns
/// all bounded candidates (unfiltered).
pub fn enumerate_composites(cfg: &SearchConfig) -> Vec<Candidate> {
    let bases = BaseStage::all();
    let mut out = Vec::new();
    let mut stack: Vec<Vec<BaseStage>> = bases.iter().map(|&b| vec![b]).collect();
    while let Some(seq) = stack.pop() {
        if let Some(c) = score(&seq, cfg) {
            out.push(c);
        }
        if seq.len() < cfg.max_stages {
            for &b in &bases {
                let mut next = seq.clone();
                next.push(b);
                stack.push(next);
            }
        }
    }
    out
}

/// The (depth, error) Pareto frontier of a candidate set: candidates
/// not dominated by any other in both depth and error, sorted by depth
/// with strictly decreasing error.
pub fn pareto_frontier(mut cands: Vec<Candidate>) -> Vec<Candidate> {
    cands.sort_by(|a, b| {
        a.depth
            .cmp(&b.depth)
            .then(a.max_error.partial_cmp(&b.max_error).expect("finite"))
    });
    let mut out: Vec<Candidate> = Vec::new();
    let mut best = f64::INFINITY;
    for c in cands {
        if c.max_error < best {
            best = c.max_error;
            out.push(c);
        }
    }
    out
}

/// The minimal-depth composite achieving `max_error ≤ tolerance`
/// (ties broken by error, then by total degree).
pub fn min_depth_composite(cfg: &SearchConfig, tolerance: f64) -> Option<Candidate> {
    enumerate_composites(cfg)
        .into_iter()
        .filter(|c| c.max_error <= tolerance)
        .min_by(|a, b| {
            a.depth
                .cmp(&b.depth)
                .then(a.max_error.partial_cmp(&b.max_error).expect("finite"))
                .then(a.degree.cmp(&b.degree))
        })
}

/// Tab. 2 regeneration: the minimal-depth composite whose *summed
/// degree* stays within `max_degree`, among those achieving the best
/// reachable error at that budget (ties → lower error).
pub fn min_depth_under_degree(cfg: &SearchConfig, max_degree: usize) -> Option<Candidate> {
    let cands: Vec<Candidate> = enumerate_composites(cfg)
        .into_iter()
        .filter(|c| c.degree <= max_degree)
        .collect();
    let best_err = cands
        .iter()
        .map(|c| c.max_error)
        .fold(f64::INFINITY, f64::min);
    // "Achieving" = within 2x of the best error at this degree budget.
    cands
        .into_iter()
        .filter(|c| c.max_error <= best_err * 2.0)
        .min_by(|a, b| {
            a.depth
                .cmp(&b.depth)
                .then(a.max_error.partial_cmp(&b.max_error).expect("finite"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::PafForm;

    fn cfg() -> SearchConfig {
        SearchConfig {
            max_stages: 3,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn base_stage_polys_fix_sign_endpoints() {
        for b in BaseStage::all() {
            let p = b.poly();
            assert!(p.is_odd_function(), "{b} must be odd");
            // Every base maps 1 near 1 (sign-preserving refinement).
            assert!((p.eval(1.0) - 1.0).abs() < 0.55, "{b}(1) = {}", p.eval(1.0));
        }
    }

    #[test]
    fn f3_matches_closed_form() {
        let f3 = BaseStage::F3.poly();
        // f_n(x) = Σ (1/4^i) C(2i,i) x (1−x²)^i, n = 3.
        for &x in &[0.1, 0.3, 0.7, 0.95] {
            let mut want = 0.0;
            let binom = [1.0, 2.0, 6.0, 20.0];
            for (i, &c) in binom.iter().enumerate() {
                want += (0.25f64).powi(i as i32) * c * x * (1.0 - x * x).powi(i as i32);
            }
            assert!((f3.eval(x) - want).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn enumeration_counts_sequences() {
        let small = SearchConfig {
            max_stages: 2,
            samples: 41,
            ..SearchConfig::default()
        };
        let cands = enumerate_composites(&small);
        // 6 + 36 sequences, minus any unbounded rejects.
        assert!(cands.len() > 30 && cands.len() <= 42, "{}", cands.len());
    }

    #[test]
    fn paper_forms_are_found_with_consistent_depth() {
        // f1∘g2 (depth 5) must appear with the depth the paper reports.
        let cands = enumerate_composites(&cfg());
        let f1g2 = cands
            .iter()
            .find(|c| c.stages == vec![BaseStage::F1, BaseStage::G2])
            .expect("f1∘g2 enumerated");
        assert_eq!(f1g2.depth, 5);
        let paper = CompositePaf::from_form(PafForm::F1G2);
        assert_eq!(f1g2.depth, paper.mult_depth());
    }

    #[test]
    fn tighter_tolerance_needs_more_depth() {
        let c = SearchConfig {
            max_stages: 4,
            samples: 101,
            ..SearchConfig::default()
        };
        let loose = min_depth_composite(&c, 0.2).expect("loose tolerance reachable");
        let tight = min_depth_composite(&c, 0.02).expect("tight tolerance reachable");
        assert!(
            tight.depth >= loose.depth,
            "{} < {}",
            tight.depth,
            loose.depth
        );
        assert!(tight.max_error <= 0.02);
    }

    #[test]
    fn frontier_is_monotone() {
        let front = pareto_frontier(enumerate_composites(&cfg()));
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].depth <= w[1].depth);
            assert!(w[0].max_error > w[1].max_error);
        }
    }

    #[test]
    fn degree_constrained_pick_beats_paper_depth() {
        // Under each of the paper's degree budgets the search finds a
        // composite at most as deep as the paper's pick.
        let c = SearchConfig {
            max_stages: 4,
            samples: 101,
            ..SearchConfig::default()
        };
        for (budget, paper_depth) in [(5usize, 5usize), (10, 6), (12, 6)] {
            let got = min_depth_under_degree(&c, budget).expect("candidate exists");
            assert!(
                got.depth <= paper_depth,
                "budget {budget}: found depth {} vs paper {paper_depth}",
                got.depth
            );
        }
    }

    #[test]
    fn candidate_roundtrips_to_composite() {
        let c = Candidate {
            stages: vec![BaseStage::F1, BaseStage::G2],
            depth: 5,
            degree: 8,
            max_error: 0.1,
        };
        let paf = c.to_composite();
        assert_eq!(paf.num_stages(), 2);
        assert_eq!(c.name(), "f1∘g2");
        assert!(c.alpha() > 3.0);
    }

    #[test]
    fn deeper_search_never_worsens_best_error() {
        let shallow = SearchConfig {
            max_stages: 2,
            samples: 81,
            ..SearchConfig::default()
        };
        let deep = SearchConfig {
            max_stages: 3,
            samples: 81,
            ..SearchConfig::default()
        };
        let best = |cands: Vec<Candidate>| {
            cands
                .into_iter()
                .map(|c| c.max_error)
                .fold(f64::INFINITY, f64::min)
        };
        let e2 = best(enumerate_composites(&shallow));
        let e3 = best(enumerate_composites(&deep));
        assert!(e3 <= e2);
    }

    #[test]
    fn alpha_sweep_is_monotone_in_depth() {
        // α = 2..5 (tolerance 2^-α): required depth is non-decreasing.
        let c = cfg();
        let mut last = 0usize;
        for alpha in 2..=5 {
            let tol = 2f64.powi(-alpha);
            let cand = min_depth_composite(&c, tol).expect("reachable at 3 stages");
            assert!(cand.depth >= last, "alpha {alpha}");
            last = cand.depth;
        }
    }
}
