//! Chebyshev interpolation — the "traditional regression method" used
//! to obtain initial PAF coefficients before Coefficient Tuning
//! (paper §4.2 step 1).

use crate::poly::Polynomial;

/// Chebyshev nodes of the first kind mapped onto `[lo, hi]`.
///
/// # Panics
///
/// Panics if `n == 0` or `lo >= hi`.
pub fn chebyshev_nodes(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one node");
    assert!(lo < hi, "degenerate interval");
    let mid = 0.5 * (lo + hi);
    let half = 0.5 * (hi - lo);
    (0..n)
        .map(|k| {
            let theta = std::f64::consts::PI * (2.0 * k as f64 + 1.0) / (2.0 * n as f64);
            mid + half * theta.cos()
        })
        .collect()
}

/// Fits a degree-`degree` polynomial to `f` on `[lo, hi]` by
/// interpolation at Chebyshev nodes, returned in the monomial basis.
///
/// Near-minimax for smooth `f`; for discontinuous targets like
/// `sign(x)` use [`crate::minimax_sign`] on a split domain instead.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn chebyshev_fit(f: impl Fn(f64) -> f64, lo: f64, hi: f64, degree: usize) -> Polynomial {
    let n = degree + 1;
    let nodes = chebyshev_nodes(n, lo, hi);
    let values: Vec<f64> = nodes.iter().map(|&x| f(x)).collect();
    // Newton's divided differences, then expand to monomials.
    let mut dd = values.clone();
    for j in 1..n {
        for i in (j..n).rev() {
            dd[i] = (dd[i] - dd[i - 1]) / (nodes[i] - nodes[i - j]);
        }
    }
    // p(x) = dd[0] + dd[1](x-x0) + dd[2](x-x0)(x-x1) + ...
    let mut p = Polynomial::zero();
    let mut basis = Polynomial::new(vec![1.0]);
    for i in 0..n {
        p = p.add(&basis.scale(dd[i]));
        if i + 1 < n {
            basis = basis.mul(&Polynomial::new(vec![-nodes[i], 1.0]));
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_inside_interval() {
        let nodes = chebyshev_nodes(9, -2.0, 3.0);
        assert_eq!(nodes.len(), 9);
        assert!(nodes.iter().all(|&x| (-2.0..=3.0).contains(&x)));
        // Strictly decreasing for first-kind nodes as generated.
        for w in nodes.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn fit_reproduces_polynomial_exactly() {
        let target = Polynomial::new(vec![2.0, -1.0, 0.0, 3.0]);
        let fit = chebyshev_fit(|x| target.eval(x), -1.0, 1.0, 3);
        for (a, b) in fit.coeffs().iter().zip(target.coeffs()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fit_sin_converges() {
        let p5 = chebyshev_fit(f64::sin, -1.0, 1.0, 5);
        let p9 = chebyshev_fit(f64::sin, -1.0, 1.0, 9);
        let e5 = p5.max_error_on(f64::sin, -1.0, 1.0, 500);
        let e9 = p9.max_error_on(f64::sin, -1.0, 1.0, 500);
        assert!(e5 < 1e-4, "degree-5 error {e5}");
        assert!(e9 < e5, "higher degree should not be worse");
    }

    #[test]
    fn fit_on_shifted_interval() {
        let p = chebyshev_fit(f64::exp, 1.0, 2.0, 8);
        let err = p.max_error_on(f64::exp, 1.0, 2.0, 300);
        assert!(err < 1e-7, "error {err}");
    }

    #[test]
    fn odd_target_yields_nearly_odd_fit() {
        let p = chebyshev_fit(|x| x.tanh(), -1.0, 1.0, 7);
        for (i, &c) in p.coeffs().iter().enumerate() {
            if i % 2 == 0 {
                assert!(c.abs() < 1e-9, "even coeff {i} = {c}");
            }
        }
    }
}
