//! Verbatim post-training PAF coefficients from the paper's appendix
//! (Tabs. 6, 7, 9, 10, 11).
//!
//! These are the per-ReLU-layer coefficients of the highest-accuracy
//! ResNet-18/ImageNet-1k models found by SMART-PAF. They serve two
//! purposes here: (1) regenerating the appendix tables
//! (`appendix_coeffs` bench binary), and (2) cross-checking that our
//! composite-PAF plumbing reproduces sensible sign approximations from
//! the authors' published numbers.

use crate::composite::CompositePaf;
use crate::poly::Polynomial;

/// Number of ReLU layers in ResNet-18 (and rows in each table).
pub const RESNET18_RELU_LAYERS: usize = 17;

/// Tab. 7: minimax composite `α = 7` coefficients (odd degrees
/// 1,3,5,7 of the two stages) used to replace *all* ReLUs.
pub const ALPHA7: ([f64; 4], [f64; 4]) = (
    [7.304451, -34.68258667, 59.85965347, -31.87552261],
    [2.400856, -2.631254435, 1.549126744, -0.331172943],
);

/// Tab. 6: best per-layer `f1 ∘ g2` coefficients
/// `(c1, c3, d1, d3, d5)`.
pub const F1G2_BEST: [(f64, f64, f64, f64, f64); RESNET18_RELU_LAYERS] = [
    (3.064987659, -4.359854698, 3.644091129, -7.056697369, 4.412326813),
    (2.939064741, -3.989520550, 3.756805420, -7.105865479, 4.209794998),
    (2.962512255, -4.095692158, 3.725888252, -7.275540352, 4.892793179),
    (2.996977568, -4.153297901, 3.783520699, -7.263069630, 4.682956696),
    (2.898474693, -4.044208527, 3.641639471, -7.243083000, 4.771345139),
    (2.895201445, -3.905539751, 3.689141512, -7.129144192, 4.736110687),
    (3.018208981, -4.113882542, 3.705801964, -7.180747986, 4.518863201),
    (2.848899364, -3.874762058, 3.611979723, -6.771905422, 4.524455547),
    (3.008141994, -4.087264061, 3.836204052, -7.746193886, 4.919332504),
    (2.968442440, -3.986024141, 3.703149557, -7.153123856, 4.776097775),
    (2.900203228, -3.924145937, 3.688660622, -7.306476593, 4.663645267),
    (2.782385111, -3.684296608, 3.651248932, -6.951449394, 4.715543270),
    (2.958166838, -3.980643034, 3.829906940, -7.610838890, 4.719619274),
    (2.811106443, -3.719117880, 3.632898569, -6.837011814, 4.688860893),
    (2.911352396, -3.886567831, 3.674616098, -6.988801003, 4.670355797),
    (2.796648502, -3.706235886, 3.595447540, -6.843948841, 4.560091972),
    (3.042621136, -3.979726553, 3.910200596, -7.521365166, 4.733543873),
];

/// One per-layer `f1² ∘ g1²` coefficient row
/// `(c0_1, c0_3, c1_1, c1_3, d0_1, d0_3, d1_1, d1_3)`.
pub type F1SqG1SqRow = (f64, f64, f64, f64, f64, f64, f64, f64);

/// Tab. 9: best per-layer `f1² ∘ g1²` coefficients.
pub const F1SQ_G1SQ_BEST: [F1SqG1SqRow; RESNET18_RELU_LAYERS] = [
    (2.736806631, -3.864239931, 2.115309238, -2.268822908, 2.239115477, -2.424801588, 2.189934731, -1.481475353),
    (2.609737396, -2.629375458, 2.115823507, -1.854049206, 2.300836086, -2.241225243, 2.231765747, -1.455139399),
    (2.572752714, -2.620458364, 2.008517504, -1.673257470, 2.017426491, -1.779745221, 2.066540718, -1.300397515),
    (2.874353647, -3.495954990, 2.073785543, -1.728460550, 2.091589212, -1.851963162, 2.141039133, -1.372249603),
    (2.588399172, -3.086382866, 2.018457890, -1.867060781, 1.999999881, -1.845559597, 2.052644968, -1.279196978),
    (2.604569435, -2.614924431, 1.933326840, -1.466841698, 1.942190886, -1.626866937, 2.105185270, -1.243854761),
    (2.510973692, -2.517734289, 2.132683754, -2.017316103, 2.235149622, -2.204242945, 2.183528662, -1.424280167),
    (2.751836777, -2.765525579, 2.021913052, -1.521527886, 2.008341789, -1.650658488, 2.125827074, -1.320276856),
    (2.517604351, -2.519313574, 2.131887913, -1.986418962, 2.247759819, -2.206320763, 2.191907883, -1.425198913),
    (2.562408924, -2.520729303, 2.110760212, -1.814227581, 2.062101603, -1.789000034, 2.126989841, -1.338556409),
    (2.437770844, -2.398545027, 2.016869307, -1.811605096, 2.103379965, -1.996958494, 2.111694336, -1.308108330),
    (2.781474829, -2.742717981, 2.020370960, -1.498650432, 2.043134928, -1.701895356, 2.140466452, -1.345968127),
    (2.483508587, -2.447231293, 2.057531595, -1.836180925, 2.189022541, -2.110060215, 2.162631512, -1.370931029),
    (2.787295341, -2.709958792, 2.009286880, -1.456294537, 2.007162809, -1.627877712, 2.114115715, -1.327487946),
    (2.674963474, -2.604590893, 2.028381109, -1.637359142, 2.129605532, -1.939982772, 2.159248829, -1.392939448),
    (2.731667519, -2.661221027, 2.026224852, -1.519181132, 2.036108494, -1.692675114, 2.118255377, -1.338307023),
    (2.670770168, -2.607930183, 2.119180441, -1.756756186, 2.236502171, -2.061469316, 2.230870724, -1.458180070),
];

/// Tab. 10: best per-layer `f2 ∘ g3` coefficients
/// `(c1, c3, c5, d1, d3, d5, d7)`.
pub const F2G3_BEST: [(f64, f64, f64, f64, f64, f64, f64); RESNET18_RELU_LAYERS] = [
    (3.487593412, -6.971315384, 2.381806374, 4.736026287, -16.16058159, 25.20542908, -13.1174),
    (3.484929323, -7.034649372, 3.685389519, 4.983552456, -17.01627541, 25.34817886, -12.4504),
    (3.312547922, -6.849102974, 3.659186125, 4.616300583, -15.70791912, 25.24704933, -13.7765),
    (3.429539680, -7.291306973, 3.949234486, 4.785545349, -16.25030518, 25.22435379, -13.1702),
    (3.550015688, -7.992001534, 3.389156818, 4.644083023, -15.87583256, 25.47412872, -13.8047),
    (3.484149933, -7.679964066, 3.130941153, 4.651588440, -15.79552174, 25.19073868, -13.6172),
    (1.875000000, -1.250000000, 0.375000000, 4.481445313, -16.18847656, 25.01367188, -12.5586),
    (3.137469292, -6.013744831, 2.900674343, 4.600552082, -15.52524090, 24.95741463, -13.7303),
    (3.355214119, -5.686008930, 1.215050697, 4.856618881, -16.73614693, 25.50185585, -12.7147),
    (3.605870724, -9.147006989, 6.160003185, 4.596205711, -15.64334202, 25.45436478, -14.1617),
    (3.669521809, -8.906849861, 5.655775070, 4.712775707, -16.15146828, 25.63137817, -13.6679),
    (3.432019472, -8.035040855, 4.964941978, 4.565317631, -15.44346809, 25.10269928, -13.9918),
    (3.677670956, -8.380808830, 4.933722496, 4.846800804, -16.69511223, 25.66197395, -13.0236),
    (3.383493662, -8.223423958, 5.385590076, 4.520639420, -15.19449425, 24.95398140, -14.2344),
    (3.321483850, -7.110795498, 4.014864445, 4.572896957, -15.55243587, 25.26078415, -14.0067),
    (3.381628513, -7.793000221, 4.806651115, 4.586762428, -15.50544167, 25.14218521, -14.0126),
    (3.627621889, -8.305987358, 5.061814785, 4.829498291, -16.53964996, 25.57732391, -13.1699),
];

/// Tab. 11: best per-layer `f2 ∘ g2` coefficients
/// `(c1, c3, c5, d1, d3, d5)`.
pub const F2G2_BEST: [(f64, f64, f64, f64, f64, f64); RESNET18_RELU_LAYERS] = [
    (3.632708073, -8.879578590, 4.333632946, 3.700465441, -7.351731300, 5.071476460),
    (3.412810802, -7.752333164, 4.516210556, 3.855783939, -7.789761543, 5.177268505),
    (3.355527401, -8.588312149, 5.618574142, 3.640014887, -7.615984440, 5.668038368),
    (3.533123493, -9.278223038, 6.205972672, 3.779361486, -7.770857811, 5.565216064),
    (1.875000000, -1.250000000, 0.375000000, 3.255859375, -5.964843750, 3.707031250),
    (3.421332598, -9.231142044, 6.353975773, 3.687772274, -7.753697395, 5.787805080),
    (3.494106293, -8.028047562, 3.792766333, 3.851673841, -8.117405891, 5.920250893),
    (3.236023188, -7.844894886, 4.858978271, 3.662446976, -7.398378849, 5.480692863),
    (3.308430910, -7.289185524, 3.084533691, 3.766145468, -8.078896523, 5.651748657),
    (3.438756227, -9.819555283, 7.128154278, 3.620871305, -7.664072514, 5.793798447),
    (3.470819712, -9.487674713, 6.564511299, 3.746651173, -8.130080223, 6.042979240),
    (3.344857931, -8.513930321, 5.686520100, 3.717740774, -7.314604759, 5.406781673),
    (3.561307669, -9.413117409, 6.282663822, 3.941442251, -8.642221451, 6.365680695),
    (3.235330582, -8.009678841, 5.256969452, 3.645334482, -7.250671864, 5.429522514),
    (3.269543648, -7.355520248, 4.257196426, 3.702267408, -7.359237194, 5.368722439),
    (3.318752050, -8.203745842, 5.435956478, 3.630973339, -7.331366062, 5.393109322),
    (3.595479012, -9.167343140, 6.192716122, 3.955091715, -8.303151131, 6.023469925),
];

/// Builds the paper's trained per-layer `f1 ∘ g2` PAF for ReLU layer `i`.
///
/// # Panics
///
/// Panics if `layer >= RESNET18_RELU_LAYERS`.
pub fn f1g2_layer(layer: usize) -> CompositePaf {
    let (c1, c3, d1, d3, d5) = F1G2_BEST[layer];
    CompositePaf::new(vec![
        Polynomial::from_odd(&[c1, c3]),
        Polynomial::from_odd(&[d1, d3, d5]),
    ])
}

/// Builds the paper's trained per-layer `f1² ∘ g1²` PAF for layer `i`.
///
/// # Panics
///
/// Panics if `layer >= RESNET18_RELU_LAYERS`.
pub fn f1sq_g1sq_layer(layer: usize) -> CompositePaf {
    let (c01, c03, c11, c13, d01, d03, d11, d13) = F1SQ_G1SQ_BEST[layer];
    CompositePaf::new(vec![
        Polynomial::from_odd(&[c01, c03]),
        Polynomial::from_odd(&[c11, c13]),
        Polynomial::from_odd(&[d01, d03]),
        Polynomial::from_odd(&[d11, d13]),
    ])
}

/// Builds the paper's trained per-layer `f2 ∘ g3` PAF for layer `i`.
///
/// # Panics
///
/// Panics if `layer >= RESNET18_RELU_LAYERS`.
pub fn f2g3_layer(layer: usize) -> CompositePaf {
    let (c1, c3, c5, d1, d3, d5, d7) = F2G3_BEST[layer];
    CompositePaf::new(vec![
        Polynomial::from_odd(&[c1, c3, c5]),
        Polynomial::from_odd(&[d1, d3, d5, d7]),
    ])
}

/// Builds the paper's trained per-layer `f2 ∘ g2` PAF for layer `i`.
///
/// # Panics
///
/// Panics if `layer >= RESNET18_RELU_LAYERS`.
pub fn f2g2_layer(layer: usize) -> CompositePaf {
    let (c1, c3, c5, d1, d3, d5) = F2G2_BEST[layer];
    CompositePaf::new(vec![
        Polynomial::from_odd(&[c1, c3, c5]),
        Polynomial::from_odd(&[d1, d3, d5]),
    ])
}

/// Builds the Tab. 7 `α = 7` composite PAF.
pub fn alpha7_paf() -> CompositePaf {
    CompositePaf::new(vec![
        Polynomial::from_odd(&ALPHA7.0),
        Polynomial::from_odd(&ALPHA7.1),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::sign_exact;

    #[test]
    fn tables_have_seventeen_rows() {
        assert_eq!(F1G2_BEST.len(), RESNET18_RELU_LAYERS);
        assert_eq!(F1SQ_G1SQ_BEST.len(), RESNET18_RELU_LAYERS);
        assert_eq!(F2G3_BEST.len(), RESNET18_RELU_LAYERS);
        assert_eq!(F2G2_BEST.len(), RESNET18_RELU_LAYERS);
    }

    #[test]
    fn trained_pafs_sign_agree_in_high_probability_band() {
        // Trained coefficients are distribution-specific: after Dynamic
        // Scaling the activation mass sits well inside [-1, 1], so we
        // only expect sign agreement in the central band (outside it
        // the trained PAFs legitimately diverge from sign).
        for layer in [0, 8, 16] {
            for paf in [
                f1g2_layer(layer),
                f1sq_g1sq_layer(layer),
                f2g3_layer(layer),
                f2g2_layer(layer),
            ] {
                let n = 40;
                let mut agree = 0;
                for i in 1..=n {
                    let x = 0.05 + 0.55 * i as f64 / n as f64;
                    if paf.eval(x) > 0.0 {
                        agree += 1;
                    }
                    if paf.eval(-x) < 0.0 {
                        agree += 1;
                    }
                }
                assert!(
                    agree as f64 >= 1.8 * n as f64,
                    "layer {layer}: only {agree}/{} band points sign-agree",
                    2 * n
                );
            }
        }
    }

    #[test]
    fn alpha7_matches_generic_form() {
        use crate::composite::{CompositePaf, PafForm};
        let from_table = alpha7_paf();
        let from_form = CompositePaf::from_form(PafForm::Alpha7);
        for i in -10..=10 {
            let x = i as f64 / 10.0;
            assert!((from_table.eval(x) - from_form.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn layer6_f2g3_is_untouched_closed_form_f2() {
        // The paper's table retains the analytic f2 for layer 6,
        // confirming our closed-form constant.
        let (c1, c3, c5, ..) = F2G3_BEST[6];
        assert_eq!((c1, c3, c5), (1.875, -1.25, 0.375));
    }

    #[test]
    fn trained_pafs_are_odd() {
        for stage in f1sq_g1sq_layer(3).stages() {
            assert!(stage.is_odd_function());
        }
    }

    #[test]
    fn alpha7_decent_sign_error() {
        // The α=7 minimax is accurate once |x| clears its resolution
        // threshold; below that (e.g. x = 0.05) the error grows, which
        // is exactly why CT/DS matter in the paper.
        let paf = alpha7_paf();
        let e = (0..100)
            .map(|i| {
                let x = 0.15 + 0.85 * i as f64 / 99.0;
                (paf.eval(x) - sign_exact(x)).abs()
            })
            .fold(0.0f64, f64::max);
        assert!(e < 0.1, "alpha7 worst-case error {e}");
    }
}
